(* srlint (Analysis.Barrier_safety) regression gates:

   - expect-tests: hand-built IR triggering each finding category must
     render byte-for-byte stable machine diagnostics (category, function,
     block, source line from provenance, slot, fix hint);
   - ablation: with Deconflict's call-as-wait modeling disabled (the
     pre-PR 2 blindness), srlint statically flags the interprocedural
     deadlock shape the fuzzer once had to find dynamically — and the
     simulator confirms the flag;
   - clean sweep: every example kernel and every corpus repro compiles
     with zero findings in every mode (the checker is a mandatory
     Core.Compile stage, so examples/workloads depend on this);
   - generator reach: the fuzzer emits threshold-gated label and func
     hints, so campaigns exercise the checker on soft barriers. *)

module T = Ir.Types
module B = Ir.Builder
module BS = Analysis.Barrier_safety
module Pipeline = Fuzz.Pipeline

let render = BS.render

let check_render name program ~speculative expected =
  Alcotest.(check string) name expected (render (BS.check ~speculative program))

(* ---- expect-tests: one crafted program per category ---- *)

(* Three barriers in rock-paper-scissors: each divergent arm cancels one
   slot and waits on another while still holding the third, so the
   waits-for relation is the 3-cycle b1->b0, b2->b1, b0->b2 with no
   mutual pair (hence no overlap finding, only the cycle). *)
let test_bypassable_wait () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p and b1 = B.fresh_barrier p and b2 = B.fresh_barrier p in
  let arm1 = B.add_block f and arm2 = B.add_block f and arm3 = B.add_block f in
  let mid = B.add_block f in
  List.iter (B.append f f.T.entry) [ T.Join b0; T.Join b1; T.Join b2 ];
  let c = B.fresh_reg f in
  B.append f f.T.entry (T.Tid c);
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = arm1; if_false = mid });
  B.set_term f mid (T.Br { cond = T.Reg c; if_true = arm2; if_false = arm3 });
  List.iter (B.append f arm1) [ T.Cancel b2; T.Wait b0 ];
  List.iter (B.append f arm2) [ T.Cancel b0; T.Wait b1 ];
  List.iter (B.append f arm3) [ T.Cancel b1; T.Wait b2 ];
  check_render "3-cycle is one bypassable-wait finding" p ~speculative:[]
    "srlint: category=bypassable-wait func=k block=bb3 line=? slot=b0 msg=wait can be \
     bypassed: slots {b0, b1, b2} form a waits-for cycle (each may block a holder of the \
     next), so no schedule can fire them fix=break the cycle: cancel or deconflict one of \
     the slots before its conflicting wait hint=insert-cancel"

(* Two barriers held across complementary waits in divergent arms: the
   2-cycle is also the exact partial-overlap shape Deconflict must
   separate, so both detectors report it. *)
let test_unseparated_overlap () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p and b1 = B.fresh_barrier p in
  let arm1 = B.add_block f and arm2 = B.add_block f in
  List.iter (B.append f f.T.entry) [ T.Join b0; T.Join b1 ];
  let c = B.fresh_reg f in
  B.append f f.T.entry (T.Tid c);
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = arm1; if_false = arm2 });
  List.iter (B.append f arm1) [ T.Wait b0; T.Cancel b1 ];
  List.iter (B.append f arm2) [ T.Wait b1; T.Cancel b0 ];
  check_render "mutual partial overlap reports cycle and overlap" p ~speculative:[]
    "srlint: category=bypassable-wait func=k block=bb2 line=? slot=b0 msg=wait can be \
     bypassed: slots {b0, b1} form a waits-for cycle (each may block a holder of the next), \
     so no schedule can fire them fix=break the cycle: cancel or deconflict one of the \
     slots before its conflicting wait hint=insert-cancel\n\
     srlint: category=unseparated-overlap func=k block=bb2 line=? slot=b0 msg=slots b0 and \
     b1 overlap partially and can each block a holder of the other; Deconflict should have \
     separated them fix=re-run deconfliction on this pair, or cancel the held slot before \
     the wait hint=split-slot"

let test_double_arrive () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p in
  List.iter (B.append f f.T.entry) [ T.Join b0; T.Join b0; T.Wait b0 ];
  check_render "join twice on a live slot" p ~speculative:[]
    "srlint: category=double-arrive func=k block=bb0 line=? slot=b0 msg=arrive-after-arrive: \
     every path to this join already holds b0 fix=remove the redundant join, or use \
     rejoin.barrier after the wait hint=split-slot"

let test_unallocated_slot () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p in
  List.iter (B.append f f.T.entry) [ T.Join b0; T.Wait b0; T.Cancel 3 ];
  check_render "slot id beyond next_barrier" p ~speculative:[]
    "srlint: category=unallocated-slot func=k block=bb0 line=? slot=b3 msg=slot b3 is \
     outside the allocated range [0, 1) fix=allocate the slot with Builder.fresh_barrier \
     before referencing it hint=remap-slot"

let test_orphan_wait () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p in
  B.append f f.T.entry (T.Wait b0);
  check_render "wait with no arrive site anywhere" p ~speculative:[]
    "srlint: category=unallocated-slot func=k block=bb0 line=? slot=b0 msg=wait/cancel on \
     b0, but no join/rejoin arrives on it anywhere fix=insert join.barrier on every \
     participating path, or delete the orphan primitive hint=remap-slot"

(* Join in one arm only, wait at the merge: a speculative placement whose
   BSSY does not dominate its BSYNC, the paper's rule 5. *)
let test_undominated_wait () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p in
  let arm = B.add_block f and skip = B.add_block f and merge = B.add_block f in
  let c = B.fresh_reg f in
  B.append f f.T.entry (T.Tid c);
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = arm; if_false = skip });
  B.append f arm (T.Join b0);
  B.set_term f arm (T.Jump merge);
  B.set_term f skip (T.Jump merge);
  B.append f merge (T.Wait b0);
  check_render "wait not dominated by its join block" p
    ~speculative:[ { BS.sfunc = "k"; slot = b0; join_block = arm } ]
    "srlint: category=undominated-wait func=k block=bb3 line=? slot=b0 msg=speculative wait \
     on b0 at bb3 is not dominated by its join block bb1: some participant can reach the \
     wait region without arriving fix=move the predict hint so the join dominates the \
     wait, or drop the hint hint=hoist-wait"

(* Predicate-aware reachability: a wait reachable only through a branch
   whose condition the block itself pins to a constant must not feed
   the waits-for relation. The live path here is benign — everyone
   joins both slots and waits them in one order — while the dead arm
   waits b0 first, which (if believed reachable) completes the mutual
   {b0, b1} cycle. Before the refinement this exact program was
   flagged bypassable-wait; the pin is that it stays clean, and that
   the same shape with an opaque condition is still flagged. *)
let constant_guard_program cond_of =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p and b1 = B.fresh_barrier p in
  let dead = B.add_block f and live = B.add_block f in
  List.iter (B.append f f.T.entry) [ T.Join b0; T.Join b1 ];
  let cond = cond_of f in
  B.set_term f f.T.entry (T.Br { cond; if_true = dead; if_false = live });
  (* Dead arm: waits b0 while holding b1 — the edge that would close
     the cycle against the live arm's wait on b1. *)
  B.append f dead (T.Wait b0);
  B.set_term f dead (T.Jump live);
  List.iter (B.append f live) [ T.Wait b1; T.Wait b0 ];
  p

let test_constant_branch_pruned () =
  (* Immediate-false condition: the arm is statically untakeable. *)
  check_render "immediate-false guard leaves no findings"
    (constant_guard_program (fun _ -> T.Imm (T.I 0)))
    ~speculative:[] "";
  (* A register the block itself folds to 0 is just as dead. *)
  let folded (f : T.func) =
    let a = B.fresh_reg f and c = B.fresh_reg f in
    B.append f f.T.entry (T.Mov (a, T.Imm (T.I 3)));
    B.append f f.T.entry (T.Bin (T.Lt, c, T.Reg a, T.Imm (T.I 2)));
    T.Reg c
  in
  check_render "block-locally folded guard leaves no findings"
    (constant_guard_program folded) ~speculative:[] "";
  (* Control: with an opaque condition the cycle is real and reported. *)
  let opaque (f : T.func) =
    let c = B.fresh_reg f in
    B.append f f.T.entry (T.Tid c);
    T.Reg c
  in
  let findings = BS.check (constant_guard_program opaque) in
  Alcotest.(check bool) "opaque guard still reports the cycle" true
    (List.exists (fun (fd : BS.finding) -> fd.BS.category = BS.Bypassable_wait) findings)

(* Source-line provenance: lower a real kernel so blocks carry src_line,
   then inject a bad primitive and check the line shows up. *)
let test_provenance_line () =
  let src = "kernel k() {\n  var x: int = 1;\n  outi[0] = x;\n}\n" in
  let src = "global outi: int[4];\n" ^ src in
  let p = Front.Lower.compile_source src in
  let f = Hashtbl.find p.T.funcs "k" in
  B.append f f.T.entry (T.Wait 0);
  check_render "diagnostic carries the source line of the block" p ~speculative:[]
    "srlint: category=unallocated-slot func=k block=bb0 line=3 slot=b0 msg=slot b0 is \
     outside the allocated range [0, 0) fix=allocate the slot with Builder.fresh_barrier \
     before referencing it hint=remap-slot"

(* ---- ablation: srlint flags the PR 2 interprocedural deadlock ---- *)

(* The §3 common-call conflict as srfuzz minimized it (same shape as
   test_fuzz.conflicting_source): callers block on the interprocedural
   barrier waiting at fn0's entry while non-callers block on the PDOM
   join — complementary waiting sets. *)
let conflicting_source =
  {|
func fn0(p0: float) -> float {
}

kernel k() {
  var accf3: float = 0.0;
  predict func fn0;
  for i5 in 0 .. 1 {
    if ((randint(3) == 0)) {
      accf3 = (accf3 + fn0(fabs((rand() - rand()))));
    }
  }
}
|}

let is_deadlock_category c = c = BS.Bypassable_wait || c = BS.Unseparated_overlap

let test_ablation_flags_interproc_deadlock () =
  let ast = Front.Parser.parse_string conflicting_source in
  let ablated =
    Pipeline.compile ~deconflict_call_waits:false ~mode:Pipeline.Specrecon ast
  in
  Alcotest.(check bool)
    "srlint statically flags the shape under the ablation" true
    (List.exists (fun (f : BS.finding) -> is_deadlock_category f.BS.category)
       ablated.Pipeline.lint);
  (* The static flag is truthful: the ablated binary really deadlocks. *)
  let deadlocked =
    List.exists
      (fun policy ->
        let config = { Fuzz.Oracle.base_config with Simt.Config.policy } in
        match
          Simt.Interp.run config ablated.Pipeline.decoded ~args:[]
            ~init_memory:(Fuzz.Oracle.init_memory ablated.Pipeline.program)
        with
        | _ -> false
        | exception Simt.Interp.Deadlock _ -> true)
      Fuzz.Oracle.policies
  in
  Alcotest.(check bool) "ablated compilation deadlocks in the simulator" true deadlocked;
  (* With call-as-wait modeling restored, both the pass and the checker
     agree the program is safe. *)
  let fixed = Pipeline.compile ~mode:Pipeline.Specrecon ast in
  Alcotest.(check int) "no findings with modeling on" 0 (List.length fixed.Pipeline.lint)

(* ---- clean sweep over examples and corpus ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let simt_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".simt")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let test_clean_sweep () =
  let files = simt_files "../examples/kernels" @ simt_files "corpus" in
  Alcotest.(check bool)
    (Printf.sprintf "sweep covers examples and corpus (found %d)" (List.length files))
    true
    (List.length files >= 10);
  List.iter
    (fun path ->
      let ast = Front.Parser.parse_string (read_file path) in
      List.iter
        (fun mode ->
          let staged = Pipeline.compile ~mode ast in
          match staged.Pipeline.lint with
          | [] -> ()
          | fs -> Alcotest.failf "%s (%s): %s" path (Pipeline.mode_name mode) (render fs))
        [ Pipeline.Baseline; Pipeline.Specrecon ];
      (* The Core.Compile presets run srlint as a mandatory hard-error
         stage, so compiling at all asserts zero findings. *)
      List.iter
        (fun options -> ignore (Core.Compile.compile_ast options ast))
        [ Core.Compile.baseline; Core.Compile.speculative; Core.Compile.automatic ])
    files

(* ---- generator reach: threshold-gated hints ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_generator_threshold_hints () =
  let sources = List.init 120 (fun id -> Front.Pretty.to_string (Fuzz.Gen.generate ~seed:7 id).Fuzz.Gen.ast) in
  let label_threshold =
    List.exists (fun s -> contains s " threshold " && not (contains s "predict func")) sources
  in
  let func_threshold = List.exists (fun s -> contains s "predict func fn0 threshold ") sources in
  Alcotest.(check bool) "label hints with thresholds are generated" true label_threshold;
  Alcotest.(check bool) "func hints with thresholds are generated" true func_threshold

let tests =
  [
    ( "lint.diagnostics",
      [
        Alcotest.test_case "bypassable-wait (3-cycle)" `Quick test_bypassable_wait;
        Alcotest.test_case "unseparated-overlap (mutual 2-cycle)" `Quick
          test_unseparated_overlap;
        Alcotest.test_case "double-arrive" `Quick test_double_arrive;
        Alcotest.test_case "unallocated slot id" `Quick test_unallocated_slot;
        Alcotest.test_case "orphan wait" `Quick test_orphan_wait;
        Alcotest.test_case "constant-branch arms pruned" `Quick test_constant_branch_pruned;
        Alcotest.test_case "undominated speculative wait" `Quick test_undominated_wait;
        Alcotest.test_case "source-line provenance" `Quick test_provenance_line;
      ] );
    ( "lint.soundness",
      [
        Alcotest.test_case "ablated deconflict: flagged statically, deadlocks dynamically"
          `Quick test_ablation_flags_interproc_deadlock;
        Alcotest.test_case "examples and corpus lint clean in all modes" `Slow
          test_clean_sweep;
        Alcotest.test_case "generator emits threshold-gated hints" `Quick
          test_generator_threshold_hints;
      ] );
  ]
