(* Repair synthesis (Analysis.Barrier_repair) regression gates:

   - one synthesized-edit case per finding category: the hand-built IR
     from the lint expect-tests must come back Repaired, re-check clean,
     with the hinted edit class chosen;
   - cost ordering: with two single-edit repairs available, the search
     must pick the one outside the loop (the §4.5 frequency tie-break),
     and prefer a hoist over an equal-cost cancel by enumeration order;
   - unrepairable: a program with two independent waits-for cycles
     under a one-edit budget must be reported Unrepairable with the
     blocking finding named (and repair fine under the default budget);
   - idempotence: repairing an accepted repair is a no-op (Clean);
   - corpus: every deadlock repro in test/corpus/ auto-repairs, and the
     repaired program runs to completion under every scheduler with
     yield recovery ENABLED and zero yields taken, landing on memory
     bit-identical to the PDOM baseline — the dynamic proof behind the
     @repair-smoke gate's exit codes. *)

module T = Ir.Types
module B = Ir.Builder
module BS = Analysis.Barrier_safety
module BR = Analysis.Barrier_repair
module Pipeline = Fuzz.Pipeline
module Oracle = Fuzz.Oracle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Inline-record payloads cannot escape their match, so the helper hands
   back the fields the tests use. *)
let repaired name outcome =
  match outcome with
  | BR.Repaired { program; edits; _ } -> (program, edits)
  | BR.Clean -> Alcotest.failf "%s: expected Repaired, got Clean" name
  | BR.Unrepairable { blocking; _ } ->
    Alcotest.failf "%s: expected Repaired, got Unrepairable (%s)" name
      (Format.asprintf "%a" BS.pp_machine blocking)

let assert_clean name ?(speculative = []) p =
  match BS.check ~speculative p with
  | [] -> ()
  | fs -> Alcotest.failf "%s: repaired program still flagged: %s" name (BS.render fs)

(* ---- one synthesized edit per category ---- *)

(* Rock-paper-scissors 3-cycle (test_lint.test_bypassable_wait). *)
let cycle3_program () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p and b1 = B.fresh_barrier p and b2 = B.fresh_barrier p in
  let arm1 = B.add_block f and arm2 = B.add_block f and arm3 = B.add_block f in
  let mid = B.add_block f in
  List.iter (B.append f f.T.entry) [ T.Join b0; T.Join b1; T.Join b2 ];
  let c = B.fresh_reg f in
  B.append f f.T.entry (T.Tid c);
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = arm1; if_false = mid });
  B.set_term f mid (T.Br { cond = T.Reg c; if_true = arm2; if_false = arm3 });
  List.iter (B.append f arm1) [ T.Cancel b2; T.Wait b0 ];
  List.iter (B.append f arm2) [ T.Cancel b0; T.Wait b1 ];
  List.iter (B.append f arm3) [ T.Cancel b1; T.Wait b2 ];
  p

let test_bypassable_wait () =
  let p = cycle3_program () in
  let findings = BS.check p in
  check_bool "program is flagged" true (findings <> []);
  (* The hinted class leads the candidate list. *)
  (match BR.candidates p (List.hd findings) with
  | [] -> Alcotest.fail "no candidates for a bypassable-wait finding"
  | (e, _) :: _ -> check_string "hinted class first" "insert-cancel" (BR.edit_class e));
  let q, edits = repaired "3-cycle" (BR.repair p) in
  check_int "one edit breaks the cycle" 1 (List.length edits);
  check_string "and it is a cancel insertion" "insert-cancel"
    (BR.edit_class (List.hd edits));
  assert_clean "3-cycle" q;
  (* The input program is never mutated: still flagged. *)
  check_bool "input untouched" true (BS.check p <> [])

let test_unseparated_overlap () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p and b1 = B.fresh_barrier p in
  let arm1 = B.add_block f and arm2 = B.add_block f in
  List.iter (B.append f f.T.entry) [ T.Join b0; T.Join b1 ];
  let c = B.fresh_reg f in
  B.append f f.T.entry (T.Tid c);
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = arm1; if_false = arm2 });
  List.iter (B.append f arm1) [ T.Wait b0; T.Cancel b1 ];
  List.iter (B.append f arm2) [ T.Wait b1; T.Cancel b0 ];
  check_int "cycle and overlap reported" 2 (List.length (BS.check p));
  let q, edits = repaired "mutual overlap" (BR.repair p) in
  check_int "one edit clears both findings" 1 (List.length edits);
  assert_clean "mutual overlap" q

let test_double_arrive () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p in
  List.iter (B.append f f.T.entry) [ T.Join b0; T.Join b0; T.Wait b0 ];
  let findings = BS.check p in
  (match BR.candidates p (List.hd findings) with
  | (BR.Split_slot { fresh; _ }, _) :: _ ->
    check_int "split mints the next unallocated slot" 1 fresh
  | _ -> Alcotest.fail "expected a split-slot candidate first");
  let q, edits = repaired "double arrive" (BR.repair p) in
  assert_clean "double arrive" q;
  check_string "repaired by splitting the slot" "split-slot"
    (BR.edit_class (List.hd edits))

let test_unallocated_slot () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p in
  List.iter (B.append f f.T.entry) [ T.Join b0; T.Wait b0; T.Cancel 3 ];
  let q, edits = repaired "out-of-range slot" (BR.repair p) in
  assert_clean "out-of-range slot" q;
  check_string "repaired by remapping into the allocated range" "remap-slot"
    (BR.edit_class (List.hd edits))

let test_orphan_wait () =
  (* No arrive site anywhere: nothing to remap to, so the only edit
     left is deleting the orphan primitive. *)
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p in
  B.append f f.T.entry (T.Wait b0);
  let q, edits = repaired "orphan wait" (BR.repair p) in
  assert_clean "orphan wait" q;
  check_string "repaired by dropping the orphan" "drop-barrier"
    (BR.edit_class (List.hd edits))

let test_undominated_wait () =
  (* Join in one arm, wait at the merge (rule 5). Hoisting the wait into
     the join block and cancelling at the merge cost the same (neither
     is in a loop), so the enumeration order decides: the hoist is the
     hinted class and comes first. *)
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p in
  let arm = B.add_block f and skip = B.add_block f and merge = B.add_block f in
  let c = B.fresh_reg f in
  B.append f f.T.entry (T.Tid c);
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = arm; if_false = skip });
  B.append f arm (T.Join b0);
  B.set_term f arm (T.Jump merge);
  B.set_term f skip (T.Jump merge);
  B.append f merge (T.Wait b0);
  let speculative = [ { BS.sfunc = "k"; slot = b0; join_block = arm } ] in
  let q, edits = repaired "undominated wait" (BR.repair ~speculative p) in
  assert_clean "undominated wait" ~speculative q;
  match edits with
  | [ (BR.Move_wait { to_block; hoist; _ } as e) ] ->
    check_string "hoist chosen over equal-cost cancel" "hoist-wait" (BR.edit_class e);
    check_bool "marked as a hoist" true hoist;
    check_int "lands in the join block" arm to_block
  | es -> Alcotest.failf "expected one hoist, got: %s" (BR.render_edits es)

(* ---- cost ordering: the frequency tie-break ---- *)

let test_cost_prefers_cooler_block () =
  (* Mutual 2-cycle with one wait inside a loop: cancelling before the
     loop-resident wait costs barrier_weight * default_trip, cancelling
     before the straight-line wait costs barrier_weight * 1. Both are
     single-edit repairs, so the search must return the cheap one. *)
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p and b1 = B.fresh_barrier p in
  let arm_a = B.add_block f in
  let head = B.add_block f and body = B.add_block f and out = B.add_block f in
  List.iter (B.append f f.T.entry) [ T.Join b0; T.Join b1 ];
  let c = B.fresh_reg f in
  B.append f f.T.entry (T.Tid c);
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = arm_a; if_false = head });
  B.append f arm_a (T.Wait b0);
  B.set_term f head (T.Br { cond = T.Reg c; if_true = body; if_false = out });
  B.append f body (T.Wait b1);
  B.set_term f body (T.Jump head);
  ignore out;
  let q, edits = repaired "loop vs straight-line" (BR.repair p) in
  match edits with
  | [ BR.Insert_cancel { block; cancel; _ } ] ->
    check_int "cancel lands in the straight-line arm, not the loop" arm_a block;
    check_int "and withdraws the loop-side slot" b1 cancel;
    assert_clean "loop vs straight-line" q
  | es -> Alcotest.failf "expected one insert-cancel, got: %s" (BR.render_edits es)

(* ---- unrepairable: budget exhaustion names the blocking finding ---- *)

(* Two independent mutual cycles: {b0,b1} across arms 1/2 and {b2,b3}
   across arms 3/4. No single edit clears both. *)
let double_cycle_program () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p and b1 = B.fresh_barrier p in
  let b2 = B.fresh_barrier p and b3 = B.fresh_barrier p in
  let arm1 = B.add_block f and arm2 = B.add_block f in
  let mid = B.add_block f in
  let arm3 = B.add_block f and arm4 = B.add_block f in
  let tail = B.add_block f in
  List.iter (B.append f f.T.entry) [ T.Join b0; T.Join b1 ];
  let c = B.fresh_reg f in
  B.append f f.T.entry (T.Tid c);
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = arm1; if_false = arm2 });
  List.iter (B.append f arm1) [ T.Wait b0; T.Cancel b1 ];
  List.iter (B.append f arm2) [ T.Wait b1; T.Cancel b0 ];
  B.set_term f arm1 (T.Jump mid);
  B.set_term f arm2 (T.Jump mid);
  List.iter (B.append f mid) [ T.Join b2; T.Join b3 ];
  B.set_term f mid (T.Br { cond = T.Reg c; if_true = arm3; if_false = arm4 });
  List.iter (B.append f arm3) [ T.Wait b2; T.Cancel b3 ];
  List.iter (B.append f arm4) [ T.Wait b3; T.Cancel b2 ];
  B.set_term f arm3 (T.Jump tail);
  B.set_term f arm4 (T.Jump tail);
  p

let test_unrepairable_names_blocking_finding () =
  let p = double_cycle_program () in
  (match BR.repair ~max_edits:1 p with
  | BR.Unrepairable { blocking; explored } ->
    check_string "a cycle blocks the one-edit repair" "bypassable-wait"
      (BS.category_name blocking.BS.category);
    check_bool "the search actually explored states" true (explored > 0)
  | BR.Clean -> Alcotest.fail "expected Unrepairable, got Clean"
  | BR.Repaired { edits; _ } ->
    Alcotest.failf "expected Unrepairable under a one-edit budget, got: %s"
      (BR.render_edits edits));
  (* The budget, not the program, was the obstacle. *)
  let q, edits = repaired "double cycle, default budget" (BR.repair p) in
  check_int "two edits, one per cycle" 2 (List.length edits);
  assert_clean "double cycle" q

(* ---- idempotence ---- *)

let test_idempotent () =
  let p = cycle3_program () in
  let q, _ = repaired "first repair" (BR.repair p) in
  match BR.repair q with
  | BR.Clean -> ()
  | BR.Repaired _ | BR.Unrepairable _ ->
    Alcotest.fail "repairing a repaired program must be a no-op (Clean)"

(* ---- corpus: repaired repros run clean, zero yields, PDOM memory ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".simt")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let test_corpus_repairs () =
  let files = corpus_files () in
  check_bool
    (Printf.sprintf "corpus holds at least 5 repros (found %d)" (List.length files))
    true
    (List.length files >= 5);
  List.iter
    (fun path ->
      let ast = Front.Parser.parse_string (read_file path) in
      (* The conflicting placement: speculative compilation with
         deconfliction off — what the repros were minimized to deadlock
         under. *)
      let broken = Pipeline.compile ~deconflict:false ~mode:Pipeline.Specrecon ast in
      if broken.Pipeline.lint = [] then
        Alcotest.failf "%s: expected findings with deconfliction off" path;
      let speculative = broken.Pipeline.speculative in
      let fixed =
        match BR.repair ~speculative broken.Pipeline.program with
        | BR.Repaired { program; _ } -> program
        | BR.Clean -> Alcotest.failf "%s: repair claims clean on a flagged program" path
        | BR.Unrepairable { blocking; _ } ->
          Alcotest.failf "%s: unrepairable (%s)" path
            (Format.asprintf "%a" BS.pp_machine blocking)
      in
      assert_clean path ~speculative fixed;
      (* PDOM reference image per kernel. *)
      let baseline = Pipeline.compile ~mode:Pipeline.Baseline ast in
      let linear = Ir.Linear.linearize fixed in
      let decoded = Ir.Decoded.decode linear in
      List.iter
        (fun (kf : Ir.Linear.finfo) ->
          let kname = kf.Ir.Linear.fname in
          let reference =
            Simt.Interp.run Oracle.base_config baseline.Pipeline.decoded ~entry:kname
              ~args:[]
              ~init_memory:(Oracle.init_memory baseline.Pipeline.program)
          in
          List.iter
            (fun policy ->
              (* Yield recovery ON: a correct repair must never need it,
                 so yields must stay zero (the watchdog would otherwise
                 mask a repair that still deadlocks). *)
              let config =
                { Oracle.base_config with
                  Simt.Config.policy;
                  yield_on_stall = true;
                  yield_policy = Simt.Config.Oldest_arrival
                }
              in
              let result =
                Simt.Interp.run config decoded ~entry:kname ~args:[]
                  ~init_memory:(Oracle.init_memory fixed)
              in
              let where =
                Printf.sprintf "%s/%s/%s" path (Oracle.policy_name policy) kname
              in
              check_int
                (where ^ ": zero yields on the repaired program")
                0
                result.Simt.Interp.metrics.Simt.Metrics.yields;
              check_int
                (where ^ ": all threads finish")
                reference.Simt.Interp.metrics.Simt.Metrics.threads_finished
                result.Simt.Interp.metrics.Simt.Metrics.threads_finished;
              match
                Oracle.first_diff
                  (Oracle.snapshot reference.Simt.Interp.memory)
                  (Oracle.snapshot result.Simt.Interp.memory)
              with
              | None -> ()
              | Some addr ->
                Alcotest.failf "%s: memory differs from the PDOM baseline at address %d"
                  where addr)
            Oracle.policies)
        (Oracle.runnable_kernels linear))
    files

let tests =
  [
    ( "repair.synthesis",
      [
        Alcotest.test_case "bypassable-wait: insert-cancel" `Quick test_bypassable_wait;
        Alcotest.test_case "unseparated-overlap: one edit clears both" `Quick
          test_unseparated_overlap;
        Alcotest.test_case "double-arrive: split-slot" `Quick test_double_arrive;
        Alcotest.test_case "unallocated-slot: remap-slot" `Quick test_unallocated_slot;
        Alcotest.test_case "orphan wait: drop-barrier" `Quick test_orphan_wait;
        Alcotest.test_case "undominated-wait: hoist into the join block" `Quick
          test_undominated_wait;
        Alcotest.test_case "cost model prefers the cooler block" `Quick
          test_cost_prefers_cooler_block;
        Alcotest.test_case "unrepairable under budget names the blocking finding" `Quick
          test_unrepairable_names_blocking_finding;
        Alcotest.test_case "repair is idempotent" `Quick test_idempotent;
      ] );
    ( "repair.corpus",
      [
        Alcotest.test_case "every deadlock repro repairs to PDOM-identical memory" `Quick
          test_corpus_repairs;
      ] );
  ]
