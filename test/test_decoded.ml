(* Decode-time resolution (Ir.Decoded): every label, block and function
   reference must be resolved to an absolute index at decode time, and
   executing the decoded program must pick the right kernel under
   ?entry in multi-kernel translation units. (The legacy ADT-walking
   reference interpreter this file once compared against is gone; the
   decoded path is the only interpreter, and its semantics are pinned
   by the fuzz oracles and the race-logger differential instead.) *)

module T = Ir.Types
module B = Ir.Builder
module L = Ir.Linear
module D = Ir.Decoded

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string
let small_config = { Simt.Config.default with Simt.Config.n_warps = 1 }

(* ---- branch targets ---- *)

let test_backward_branch () =
  (* entry: i=0 -> loop; loop: i+=1; br (i<10) loop, done; done: exit.
     The br's taken target is the loop head — a *backward* pc. *)
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let i = B.fresh_reg f and c = B.fresh_reg f in
  let loop = B.add_block f and done_ = B.add_block f in
  B.append f f.T.entry (T.Mov (i, T.Imm (T.I 0)));
  B.set_term f f.T.entry (T.Jump loop);
  B.append f loop (T.Bin (T.Add, i, T.Reg i, T.Imm (T.I 1)));
  B.append f loop (T.Bin (T.Lt, c, T.Reg i, T.Imm (T.I 10)));
  B.set_term f loop (T.Br { cond = T.Reg c; if_true = loop; if_false = done_ });
  B.set_term f done_ T.Exit;
  let l = L.linearize p in
  let d = D.decode l in
  let pc_loop = L.block_entry_pc l ~func:"k" ~block:loop in
  let found = ref false in
  Array.iteri
    (fun pc op ->
      if op = D.op_br then begin
        found := true;
        check_int "br resolves to the loop head" pc_loop d.D.b.(pc);
        check_bool "target is backward" true (d.D.b.(pc) < pc);
        check_bool "cond is a register operand" false (D.enc_is_imm d.D.a.(pc));
        check_int "branch latency class" D.lc_branch d.D.lclass.(pc)
      end)
    d.D.op;
  check_bool "decoded program contains a br" true !found

let test_forward_branch () =
  (* Diamond: RPO lays the else side before the then side, so the br's
     taken target is *forward*, past code that sits between. *)
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let c = B.fresh_reg f in
  let then_b = B.add_block f and else_b = B.add_block f and join = B.add_block f in
  B.append f f.T.entry (T.Tid c);
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = then_b; if_false = else_b });
  B.append f then_b (T.Mov (c, T.Imm (T.I 1)));
  B.set_term f then_b (T.Jump join);
  B.append f else_b (T.Mov (c, T.Imm (T.I 2)));
  B.set_term f else_b (T.Jump join);
  B.set_term f join T.Exit;
  let l = L.linearize p in
  let d = D.decode l in
  let pc_then = L.block_entry_pc l ~func:"k" ~block:then_b in
  let pc_join = L.block_entry_pc l ~func:"k" ~block:join in
  Array.iteri
    (fun pc op ->
      if op = D.op_br then begin
        check_int "br resolves to the then block" pc_then d.D.b.(pc);
        check_bool "target is forward" true (d.D.b.(pc) > pc)
      end
      else if op = D.op_jump then
        check_int "jumps land on the join" pc_join d.D.a.(pc))
    d.D.op;
  (* Decoding is a pure function of the linear program. *)
  let d2 = D.decode l in
  check_bool "decode is deterministic" true
    (d.D.op = d2.D.op && d.D.a = d2.D.a && d.D.b = d2.D.b && d.D.c = d2.D.c
    && d.D.vals = d2.D.vals)

(* ---- cross-kernel call resolution and ?entry ---- *)

let multi_kernel_program () =
  (* Two launchable kernels share one device function; decode must give
     each call site the same absolute callee entry pc, and running with
     ?entry must pick the right kernel without re-decoding. *)
  let p = B.create_program () in
  let base = B.alloc_global p "out" 4 in
  let g = B.create_func p "twice" ~params:1 in
  let r = B.fresh_reg g in
  B.append g g.T.entry (T.Bin (T.Add, r, T.Reg 0, T.Reg 0));
  B.set_term g g.T.entry (T.Ret (Some (T.Reg r)));
  let mk name arg =
    let f = B.create_func p name ~params:0 in
    let d = B.fresh_reg f in
    B.append f f.T.entry
      (T.Call { callee = "twice"; args = [ T.Imm (T.I arg) ]; ret = Some d });
    B.append f f.T.entry (T.Store (T.Imm (T.I base), T.Reg d));
    B.set_term f f.T.entry T.Exit
  in
  mk "main" 21;
  mk "alt" 4;
  B.set_kernel p "main";
  B.add_kernel p "alt";
  (p, base)

let test_cross_kernel_calls () =
  let p, _ = multi_kernel_program () in
  let l = L.linearize p in
  let d = D.decode l in
  let g_info = List.find (fun fi -> fi.L.fname = "twice") l.L.funcs in
  check_int "two call sites" 2 (Array.length d.D.calls);
  Array.iter
    (fun ci ->
      check_string "callee name kept for dumps" "twice" ci.D.ccallee;
      check_int "entry resolved across functions" g_info.L.entry_pc ci.D.centry;
      check_int "callee frame size" g_info.L.n_regs ci.D.cn_regs;
      check_int "one argument" 1 (Array.length ci.D.cargs);
      check_bool "argument is an immediate" true (D.enc_is_imm ci.D.cargs.(0));
      check_bool "return register present" true (ci.D.cret >= 0))
    d.D.calls

let test_entry_selection () =
  let p, base = multi_kernel_program () in
  let l = L.linearize p in
  let d = D.decode l in
  let run ?entry () =
    Simt.Interp.run ?entry small_config d ~args:[] ~init_memory:(fun _ -> ())
  in
  let out r = Simt.Valops.to_int (Simt.Memsys.read r.Simt.Interp.memory base) in
  let dflt = run () and alt = run ~entry:"alt" () in
  check_int "default entry computes twice(21)" 42 (out dflt);
  check_int "?entry computes twice(4)" 8 (out alt);
  (* Entry selection must not depend on decode order: both kernels run
     from one shared decode, and a uniform single-warp run is
     deterministic, so re-running is bit-stable. *)
  let alt2 = run ~entry:"alt" () in
  check_bool "?entry rerun metrics are stable" true
    (alt.Simt.Interp.metrics = alt2.Simt.Interp.metrics);
  check_int "?entry rerun memory is stable" (out alt) (out alt2);
  match run ~entry:"nope" () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for unknown entry"

(* ---- barrier-slot operands ---- *)

let test_barrier_operands () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p and b1 = B.fresh_barrier p in
  let d = B.fresh_reg f in
  B.append f f.T.entry (T.Join b0);
  B.append f f.T.entry (T.Wait_threshold (b1, 3));
  B.append f f.T.entry (T.Arrived (d, b1));
  B.append f f.T.entry (T.Cancel b0);
  B.append f f.T.entry (T.Wait b0);
  B.set_term f f.T.entry T.Exit;
  let dp = D.decode (L.linearize p) in
  let expect pc op a b =
    check_int (Printf.sprintf "pc %d opcode" pc) op dp.D.op.(pc);
    check_int (Printf.sprintf "pc %d field a" pc) a dp.D.a.(pc);
    if b >= 0 then check_int (Printf.sprintf "pc %d field b" pc) b dp.D.b.(pc);
    check_int
      (Printf.sprintf "pc %d latency class" pc)
      D.lc_barrier dp.D.lclass.(pc)
  in
  expect 0 D.op_join b0 (-1);
  (* slot in [a], threshold in [b] — both plain ints, not encoded operands *)
  expect 1 D.op_wait_threshold b1 3;
  (* arrived: dst register in [a], slot in [b] *)
  expect 2 D.op_arrived d b1;
  expect 3 D.op_cancel b0 (-1);
  expect 4 D.op_wait b0 (-1)

(* ---- immediate pool ---- *)

let test_immediate_pool () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let x = B.fresh_reg f and y = B.fresh_reg f in
  B.append f f.T.entry (T.Mov (x, T.Imm (T.I 7)));
  B.append f f.T.entry (T.Bin (T.Fadd, y, T.Imm (T.F 1.5), T.Imm (T.F 2.5)));
  B.append f f.T.entry (T.Bin (T.Add, x, T.Reg x, T.Imm (T.I 7)));
  B.set_term f f.T.entry T.Exit;
  let d = D.decode (L.linearize p) in
  (* Appended in pc order; duplicates are NOT pooled — each Imm gets its
     own slot, keeping decode a single pass. *)
  check_bool "pool contents in pc order" true
    (d.D.vals = [| T.I 7; T.F 1.5; T.F 2.5; T.I 7 |]);
  check_bool "mov src is an immediate" true (D.enc_is_imm d.D.b.(0));
  check_int "mov src pool slot" 0 (D.enc_index d.D.b.(0));
  check_int "fadd latency class" D.lc_float d.D.lclass.(1);
  check_bool "reg operand tagged as register" false (D.enc_is_imm d.D.b.(2));
  check_int "reg operand index" x (D.enc_index d.D.b.(2))

(* ---- block-entry profile slots ---- *)

let test_profile_slots () =
  let p, _ = multi_kernel_program () in
  let l = L.linearize p in
  let d = D.decode l in
  let n_slots = Array.length d.D.bfunc in
  check_int "bfunc/bblock same length" n_slots (Array.length d.D.bblock);
  let seen = ref (-1) in
  Array.iteri
    (fun pc s ->
      let loc = l.L.locs.(pc) in
      let is_entry =
        pc = 0
        || loc.L.in_func <> l.L.locs.(pc - 1).L.in_func
        || loc.L.in_block <> l.L.locs.(pc - 1).L.in_block
      in
      check_bool (Printf.sprintf "pc %d slot iff block entry" pc) is_entry (s >= 0);
      if s >= 0 then begin
        check_int (Printf.sprintf "pc %d slots dense" pc) (!seen + 1) s;
        seen := s;
        check_string (Printf.sprintf "pc %d slot func" pc) loc.L.in_func d.D.bfunc.(s);
        check_int (Printf.sprintf "pc %d slot block" pc) loc.L.in_block d.D.bblock.(s)
      end)
    d.D.bslot;
  check_int "every slot assigned" n_slots (!seen + 1)

(* ---- listing dump (what `srcc --emit-decoded` prints) ---- *)

let test_pp_listing () =
  let source =
    "global out: int[32];\n\n\
     kernel k() {\n\
    \  var t: int = tid();\n\
    \  if (t < 2) {\n\
    \    out[t] = t + 10;\n\
    \  } else {\n\
    \    out[t] = t * 3;\n\
    \  }\n\
     }\n"
  in
  let compiled = Core.Compile.compile Core.Compile.baseline ~source in
  let got = Format.asprintf "%a" D.pp compiled.Core.Compile.decoded in
  let expected =
    "decoded: 14 slots, 5 imms, 0 calls\n\
     ; --- k ---\n\
    \   0 [bb0] tid      r0  ; alu\n\
    \   1 [bb0] mov      r1 <- r0  ; alu\n\
    \   2 [bb0] bin     .lt r2 <- r1 imm[0]=2  ; alu\n\
    \   3 [bb0] join     b0  ; barrier\n\
    \   4 [bb0] br       r2 ->9  ; branch\n\
    \   5 [bb2] bin     .add r5 <- imm[1]=0 r1  ; alu\n\
    \   6 [bb2] bin     .mul r6 <- r1 imm[2]=3  ; alu\n\
    \   7 [bb2] store    r5 r6  ; mem\n\
    \   8 [bb2] jump     ->12  ; branch\n\
    \   9 [bb1] bin     .add r3 <- imm[3]=0 r1  ; alu\n\
    \  10 [bb1] bin     .add r4 <- r1 imm[4]=10  ; alu\n\
    \  11 [bb1] store    r3 r4  ; mem\n\
    \  12 [bb3] wait     b0  ; barrier\n\
    \  13 [bb3] exit      ; branch\n"
  in
  check_string "decoded listing" expected got

let tests =
  [
    ( "ir.decoded",
      [
        Alcotest.test_case "backward branch target" `Quick test_backward_branch;
        Alcotest.test_case "forward branch target" `Quick test_forward_branch;
        Alcotest.test_case "cross-kernel call entries" `Quick test_cross_kernel_calls;
        Alcotest.test_case "multi-kernel ?entry" `Quick test_entry_selection;
        Alcotest.test_case "barrier-slot operands" `Quick test_barrier_operands;
        Alcotest.test_case "immediate pool" `Quick test_immediate_pool;
        Alcotest.test_case "block-entry profile slots" `Quick test_profile_slots;
        Alcotest.test_case "listing dump" `Quick test_pp_listing;
      ] );
  ]
