(* Differential test: an independent OCaml reference implementation of the
   MeiyaMD5 workload, computed straight from its per-thread sequential
   semantics, must match the full pipeline (MiniSIMT source → coarsening →
   lowering → synchronization passes → linearizer → SIMT simulator)
   bit-for-bit, in every compilation mode.

   MeiyaMD5 is the right subject: it is pure integer arithmetic (no
   floating-point rounding-order concerns) and draws from the per-thread
   PRNG, so the test also pins down the exact RNG stream contract
   (streams keyed by (seed, warp, lane); a coarsened thread consumes all
   of its tasks from one stream, in task order). *)

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

let imax = 2147483647

(* One simulated task of the kernel in lib/workloads/meiyamd5.ml, executed
   for virtual thread id [vtid] with draws taken from [rng]. Must mirror
   the MiniSIMT source exactly, including the order of randint draws. *)
let reference_task rng ~vtid ~max_len ~targets =
  let length =
    let short = 2 + Support.Splitmix.int rng 8 in
    if Support.Splitmix.int rng 5 = 0 then (max_len / 2) + Support.Splitmix.int rng (max_len / 2)
    else short
  in
  let a = ref 1732584193
  and b = ref 271733879
  and c = ref 1732584194
  and d = ref 271733878 in
  for block = 0 to length - 1 do
    let m = (block * 1103515245) + (vtid * 12345) in
    let f1 = (!b mod 65536 * (!c mod 65536)) + (!d mod 65536) in
    a := (!a + f1 + m) mod imax;
    a := ((!a * 131) + !b) mod imax;
    a := ((!a * 31) + (!b mod 4096 * (!c mod 4096))) mod imax;
    let f2 = (!a mod 65536 * (!d mod 65536)) + (!c mod 65536) in
    b := (!b + f2 + (m * 7)) mod imax;
    b := ((!b * 131) + !c) mod imax;
    b := ((!b * 37) + (!c mod 4096 * (!d mod 4096))) mod imax;
    let f3 = (!a mod 65536) + (!b mod 65536 * (!d mod 65536)) in
    c := (!c + f3 + (m * 13)) mod imax;
    c := ((!c * 41) + (!a mod 4096 * (!d mod 4096))) mod imax;
    d := (!d + (!a mod 65536 * (!b mod 65536)) + (m * 29)) mod imax;
    d := ((!d * 43) + (!a mod 4096 * (!b mod 4096))) mod imax
  done;
  let digest = (!a + !b + !c + !d) mod imax in
  if digest mod 64 = targets.(digest mod 64) mod 64 then 1 else 0

(* The targets table, regenerated exactly as the workload's [init] fills
   it. *)
let reference_targets () =
  let rng = Support.Splitmix.of_ints 0x77 0xd5d5 7 in
  Array.init 64 (fun _ -> Support.Splitmix.int rng 1000000)

let reference_outputs (config : Simt.Config.t) ~coarsen ~max_len =
  let targets = reference_targets () in
  let n_threads = config.n_warps * config.warp_size in
  let found = Hashtbl.create 64 in
  for wid = 0 to config.n_warps - 1 do
    for lane = 0 to config.warp_size - 1 do
      let tid = (wid * config.warp_size) + lane in
      let rng = Support.Splitmix.of_ints config.seed wid lane in
      (* a coarsened thread runs its tasks in order on one stream; task c
         simulates virtual thread tid + c * n_threads *)
      for c = 0 to coarsen - 1 do
        let vtid = tid + (c * n_threads) in
        Hashtbl.replace found vtid (reference_task rng ~vtid ~max_len ~targets)
      done
    done
  done;
  found

let run_mode options =
  let spec = Workloads.Registry.find "meiyamd5" in
  let outcome = Core.Runner.run_spec options spec in
  let base, size =
    Hashtbl.find outcome.Core.Runner.compiled.Core.Compile.program.Ir.Types.globals "found"
  in
  (outcome, Simt.Memsys.dump outcome.Core.Runner.memory ~base ~len:size)

let test_against_reference options_name options () =
  let spec = Workloads.Registry.find "meiyamd5" in
  let config = spec.Workloads.Spec.tweak_config Simt.Config.default in
  let coarsen = Option.get spec.Workloads.Spec.coarsen in
  let max_len =
    match spec.Workloads.Spec.args with
    | [ Ir.Types.I n ] -> n
    | _ -> Alcotest.fail "unexpected meiyamd5 arguments"
  in
  let expected = reference_outputs config ~coarsen ~max_len in
  let _, cells = run_mode options in
  let checked = ref 0 in
  Hashtbl.iter
    (fun vtid hit ->
      incr checked;
      match cells.(vtid) with
      | Ir.Types.I simulated ->
        if simulated <> hit then
          Alcotest.failf "%s: found[%d] = %d, reference says %d" options_name vtid simulated hit
      | Ir.Types.F _ -> Alcotest.failf "%s: found[%d] holds a float" options_name vtid)
    expected;
  check_bool "checked every virtual thread" true
    (!checked = config.Simt.Config.n_warps * config.Simt.Config.warp_size * coarsen)

(* ---- mummer: an independent reference for the suffix-walk workload ---- *)

let mummer_tables () =
  (* regenerated exactly as lib/workloads/mummer.ml's [init] fills them,
     in the same draw order *)
  let rng = Support.Splitmix.of_ints 0x33 0x9a2 6 in
  let tree_child =
    Array.init 8192 (fun _ ->
        if Support.Splitmix.float rng < 0.06 then 0 else 1 + Support.Splitmix.int rng 8191)
  in
  let skewed () =
    if Support.Splitmix.float rng < 0.95 then 0 else 1 + Support.Splitmix.int rng 3
  in
  let tree_base = Array.init 8192 (fun _ -> skewed ()) in
  let query_bases = Array.init 16384 (fun _ -> skewed ()) in
  (tree_child, tree_base, query_bases)

let mummer_reference_task rng ~vtid ~query_len (tree_child, tree_base, query_bases) =
  let query_off = vtid * 4 in
  let node = ref (1 + Support.Splitmix.int rng 8191) in
  let depth = ref 0 in
  let matched = ref true in
  while !matched && !depth < query_len do
    let base_expected = tree_base.(!node mod 8192) in
    let q = query_bases.((query_off + !depth) mod 16384) in
    if q = base_expected then begin
      node := tree_child.(((!node * 4) + q) mod 8192);
      incr depth;
      if !node = 0 then matched := false
    end
    else matched := false
  done;
  !depth

let test_mummer_against_reference options_name options () =
  let spec = Workloads.Registry.find "mummer" in
  let config = spec.Workloads.Spec.tweak_config Simt.Config.default in
  let coarsen = Option.get spec.Workloads.Spec.coarsen in
  let query_len =
    match spec.Workloads.Spec.args with
    | [ Ir.Types.I n ] -> n
    | _ -> Alcotest.fail "unexpected mummer arguments"
  in
  let tables = mummer_tables () in
  let n_threads = config.Simt.Config.n_warps * config.Simt.Config.warp_size in
  let outcome = Core.Runner.run_spec options spec in
  let base, size =
    Hashtbl.find outcome.Core.Runner.compiled.Core.Compile.program.Ir.Types.globals
      "match_lengths"
  in
  let cells = Simt.Memsys.dump outcome.Core.Runner.memory ~base ~len:size in
  for wid = 0 to config.Simt.Config.n_warps - 1 do
    for lane = 0 to config.Simt.Config.warp_size - 1 do
      let tid = (wid * config.Simt.Config.warp_size) + lane in
      let rng = Support.Splitmix.of_ints config.Simt.Config.seed wid lane in
      for c = 0 to coarsen - 1 do
        let vtid = tid + (c * n_threads) in
        let expected = mummer_reference_task rng ~vtid ~query_len tables in
        match cells.(vtid) with
        | Ir.Types.I simulated ->
          if simulated <> expected then
            Alcotest.failf "%s: match_lengths[%d] = %d, reference says %d" options_name vtid
              simulated expected
        | Ir.Types.F _ -> Alcotest.failf "%s: match_lengths[%d] holds a float" options_name vtid
      done
    done
  done


(* ---- full-registry golden differential vs the seed interpreter ----

   The mask-based interpreter (bitmask convergence groups, preallocated
   scratch, cached time-advance) is required to be *observationally
   identical* to the original list/Hashtbl implementation — same issue
   schedule, same cycle accounting, same memory image. These goldens
   were captured by running the seed interpreter over the whole workload
   registry under each compilation mode; any schedule or timing drift in
   a future interpreter change trips this immediately. *)

type golden = {
  issues : int;
  active_sum : int;
  cycles : int;
  mem_accesses : int;
  barrier_joins : int;
  barrier_waits : int;
  barrier_fires : int;
  barrier_cancels : int;
  yields : int;
  threads_finished : int;
  mem_digest : int;
}

let seed_goldens =
  [
    ("rsbench", "baseline", { issues = 171059; active_sum = 1671005; cycles = 209618; mem_accesses = 3816; barrier_joins = 3804; barrier_waits = 121; barrier_fires = 12; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 892441511871304325 });
    ("rsbench", "speculative", { issues = 124008; active_sum = 1782000; cycles = 147377; mem_accesses = 2947; barrier_joins = 5109; barrier_waits = 3009; barrier_fires = 2720; barrier_cancels = 2729; yields = 0; threads_finished = 64; mem_digest = 892441511871304325 });
    ("rsbench", "automatic", { issues = 124008; active_sum = 1782000; cycles = 147377; mem_accesses = 2947; barrier_joins = 5109; barrier_waits = 3009; barrier_fires = 2720; barrier_cancels = 2729; yields = 0; threads_finished = 64; mem_digest = 892441511871304325 });
    ("xsbench", "baseline", { issues = 135731; active_sum = 1692222; cycles = 485136; mem_accesses = 10380; barrier_joins = 3712; barrier_waits = 421; barrier_fires = 168; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 373752142903086589 });
    ("xsbench", "speculative", { issues = 246533; active_sum = 1816099; cycles = 331597; mem_accesses = 17389; barrier_joins = 13660; barrier_waits = 7976; barrier_fires = 6966; barrier_cancels = 5195; yields = 0; threads_finished = 64; mem_digest = 373752142903086589 });
    ("xsbench", "automatic", { issues = 143503; active_sum = 1816099; cycles = 500057; mem_accesses = 9952; barrier_joins = 10268; barrier_waits = 6151; barrier_fires = 5415; barrier_cancels = 2443; yields = 0; threads_finished = 64; mem_digest = 373752142903086589 });
    ("mcb", "baseline", { issues = 10598; active_sum = 80516; cycles = 13919; mem_accesses = 146; barrier_joins = 672; barrier_waits = 792; barrier_fires = 534; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 1908784984988443069 });
    ("mcb", "speculative", { issues = 8733; active_sum = 84603; cycles = 11550; mem_accesses = 158; barrier_joins = 598; barrier_waits = 733; barrier_fires = 514; barrier_cancels = 187; yields = 0; threads_finished = 64; mem_digest = 1908784984988443069 });
    ("mcb", "automatic", { issues = 8733; active_sum = 84603; cycles = 11550; mem_accesses = 158; barrier_joins = 598; barrier_waits = 733; barrier_fires = 514; barrier_cancels = 187; yields = 0; threads_finished = 64; mem_digest = 1908784984988443069 });
    ("pathtracer", "baseline", { issues = 81846; active_sum = 718976; cycles = 167639; mem_accesses = 5132; barrier_joins = 5017; barrier_waits = 4062; barrier_fires = 3022; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 4440290232581343234 });
    ("pathtracer", "speculative", { issues = 43408; active_sum = 726966; cycles = 81465; mem_accesses = 2324; barrier_joins = 2773; barrier_waits = 2835; barrier_fires = 1876; barrier_cancels = 274; yields = 0; threads_finished = 64; mem_digest = 4440290232581343234 });
    ("pathtracer", "automatic", { issues = 43408; active_sum = 726966; cycles = 81465; mem_accesses = 2324; barrier_joins = 2773; barrier_waits = 2835; barrier_fires = 1876; barrier_cancels = 274; yields = 0; threads_finished = 64; mem_digest = 4440290232581343234 });
    ("mc-gpu", "baseline", { issues = 18409; active_sum = 128824; cycles = 30655; mem_accesses = 424; barrier_joins = 1410; barrier_waits = 1513; barrier_fires = 1202; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 2163197422340525621 });
    ("mc-gpu", "speculative", { issues = 11891; active_sum = 133925; cycles = 21710; mem_accesses = 283; barrier_joins = 884; barrier_waits = 1062; barrier_fires = 795; barrier_cancels = 202; yields = 0; threads_finished = 64; mem_digest = 2163197422340525621 });
    ("mc-gpu", "automatic", { issues = 11891; active_sum = 133925; cycles = 21710; mem_accesses = 283; barrier_joins = 884; barrier_waits = 1062; barrier_fires = 795; barrier_cancels = 202; yields = 0; threads_finished = 64; mem_digest = 2163197422340525621 });
    ("mummer", "baseline", { issues = 11737; active_sum = 103363; cycles = 41629; mem_accesses = 885; barrier_joins = 1191; barrier_waits = 1424; barrier_fires = 897; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 2873978097527350252 });
    ("mummer", "speculative", { issues = 11331; active_sum = 111692; cycles = 39396; mem_accesses = 660; barrier_joins = 1124; barrier_waits = 1394; barrier_fires = 951; barrier_cancels = 334; yields = 0; threads_finished = 64; mem_digest = 2873978097527350252 });
    ("mummer", "automatic", { issues = 11324; active_sum = 114383; cycles = 39465; mem_accesses = 660; barrier_joins = 1134; barrier_waits = 1290; barrier_fires = 780; barrier_cancels = 619; yields = 0; threads_finished = 64; mem_digest = 2873978097527350252 });
    ("meiyamd5", "baseline", { issues = 47563; active_sum = 390444; cycles = 47660; mem_accesses = 24; barrier_joins = 556; barrier_waits = 196; barrier_fires = 36; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 2128813945386842112 });
    ("meiyamd5", "speculative", { issues = 47563; active_sum = 390444; cycles = 47660; mem_accesses = 24; barrier_joins = 556; barrier_waits = 196; barrier_fires = 36; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 2128813945386842112 });
    ("meiyamd5", "automatic", { issues = 32172; active_sum = 403132; cycles = 35529; mem_accesses = 344; barrier_joins = 992; barrier_waits = 991; barrier_fires = 754; barrier_cancels = 461; yields = 0; threads_finished = 64; mem_digest = 2128813945386842112 });
    ("optix-trace", "baseline", { issues = 65082; active_sum = 316088; cycles = 108898; mem_accesses = 2908; barrier_joins = 4420; barrier_waits = 3848; barrier_fires = 2832; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 414506578627320441 });
    ("optix-trace", "speculative", { issues = 65082; active_sum = 316088; cycles = 108898; mem_accesses = 2908; barrier_joins = 4420; barrier_waits = 3848; barrier_fires = 2832; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 414506578627320441 });
    ("optix-trace", "automatic", { issues = 44143; active_sum = 320252; cycles = 75269; mem_accesses = 1801; barrier_joins = 3535; barrier_waits = 3328; barrier_fires = 2404; barrier_cancels = 452; yields = 0; threads_finished = 64; mem_digest = 414506578627320441 });
    ("gpu-mcml", "baseline", { issues = 36967; active_sum = 583863; cycles = 48245; mem_accesses = 426; barrier_joins = 2544; barrier_waits = 2269; barrier_fires = 2126; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 1122208241897937969 });
    ("gpu-mcml", "speculative", { issues = 30282; active_sum = 603994; cycles = 38121; mem_accesses = 397; barrier_joins = 2283; barrier_waits = 2333; barrier_fires = 2006; barrier_cancels = 401; yields = 0; threads_finished = 64; mem_digest = 1122208241897937969 });
    ("gpu-mcml", "automatic", { issues = 30282; active_sum = 603994; cycles = 38121; mem_accesses = 397; barrier_joins = 2283; barrier_waits = 2333; barrier_fires = 2006; barrier_cancels = 401; yields = 0; threads_finished = 64; mem_digest = 1122208241897937969 });
    ("common-call", "baseline", { issues = 26274; active_sum = 425280; cycles = 26350; mem_accesses = 2; barrier_joins = 24; barrier_waits = 48; barrier_fires = 24; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 543971077896856215 });
    (* Recaptured when deconfliction learned to see interprocedural
       barriers (calls to a waiting callee now count as the wait event,
       srfuzz corpus id 18): the propagated barrier's conflict with the
       PDOM join is now resolved by Cancel-before-call, so the schedule
       metrics moved while the memory digest stayed identical. *)
    ("common-call", "speculative", { issues = 13912; active_sum = 427712; cycles = 16255; mem_accesses = 4; barrier_joins = 96; barrier_waits = 96; barrier_fires = 24; barrier_cancels = 52; yields = 0; threads_finished = 64; mem_digest = 543971077896856215 });
    ("common-call", "automatic", { issues = 26274; active_sum = 425280; cycles = 26350; mem_accesses = 2; barrier_joins = 24; barrier_waits = 48; barrier_fires = 24; barrier_cancels = 0; yields = 0; threads_finished = 64; mem_digest = 543971077896856215 });
  ]

(* Order-sensitive rolling hash over the full memory image; float cells
   hash by bit pattern so this is exact, not approximate. *)
let digest_memory (m : Simt.Memsys.t) =
  let n = Simt.Memsys.size m in
  let cells = Simt.Memsys.dump m ~base:0 ~len:n in
  let h = ref 0 in
  Array.iter
    (fun v ->
      let bits =
        match v with
        | Ir.Types.I i -> i
        | Ir.Types.F f -> Int64.to_int (Int64.bits_of_float f)
      in
      h := ((!h * 1000003) lxor bits) land max_int)
    cells;
  !h

let options_of_mode = function
  | "baseline" -> Core.Compile.baseline
  | "speculative" -> Core.Compile.speculative
  | "automatic" -> Core.Compile.automatic
  | mode -> Alcotest.failf "unknown mode %s" mode

let test_registry_matches_seed () =
  List.iter
    (fun (name, mode, g) ->
      let spec = Workloads.Registry.find name in
      let o = Core.Runner.run_spec (options_of_mode mode) spec in
      let m = o.Core.Runner.metrics in
      let tag field = Printf.sprintf "%s/%s %s" name mode field in
      check_int (tag "issues") g.issues m.Simt.Metrics.issues;
      check_int (tag "active_sum") g.active_sum m.Simt.Metrics.active_sum;
      check_int (tag "cycles") g.cycles m.Simt.Metrics.cycles;
      check_int (tag "mem_accesses") g.mem_accesses m.Simt.Metrics.mem_accesses;
      check_int (tag "barrier_joins") g.barrier_joins m.Simt.Metrics.barrier_joins;
      check_int (tag "barrier_waits") g.barrier_waits m.Simt.Metrics.barrier_waits;
      check_int (tag "barrier_fires") g.barrier_fires m.Simt.Metrics.barrier_fires;
      check_int (tag "barrier_cancels") g.barrier_cancels m.Simt.Metrics.barrier_cancels;
      check_int (tag "yields") g.yields m.Simt.Metrics.yields;
      check_int (tag "threads_finished") g.threads_finished m.Simt.Metrics.threads_finished;
      check_int (tag "mem_digest") g.mem_digest (digest_memory o.Core.Runner.memory))
    seed_goldens

let tests =
  [
    ( "differential.registry",
      [
        Alcotest.test_case "all workloads x modes match seed goldens" `Slow
          test_registry_matches_seed;
      ] );
    ( "differential.mummer",
      [
        Alcotest.test_case "baseline matches OCaml reference" `Slow
          (test_mummer_against_reference "baseline" Core.Compile.baseline);
        Alcotest.test_case "specrecon matches OCaml reference" `Slow
          (test_mummer_against_reference "specrecon" Core.Compile.speculative);
      ] );
    ( "differential.meiyamd5",
      [
        Alcotest.test_case "baseline matches OCaml reference" `Slow
          (test_against_reference "baseline" Core.Compile.baseline);
        Alcotest.test_case "specrecon matches OCaml reference" `Slow
          (test_against_reference "specrecon" Core.Compile.speculative);
        Alcotest.test_case "automatic matches OCaml reference" `Slow
          (test_against_reference "automatic" Core.Compile.automatic);
      ] );
  ]
