(* The serve tier: wire protocol round trips, the content-addressed
   compile cache, and the srserved engine held to the one-shot
   Core.Compile/Core.Runner pipeline — per-request error mapping through
   the 0–8 code contract, backpressure, and the full-registry
   differential. *)

module P = Serve.Protocol
module Cache = Serve.Cache
module Server = Serve.Server

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

(* ---- protocol: percent encoding ---- *)

let test_encode_round_trip () =
  let cases =
    [ ""; "plain"; "a b\tc"; "line1\nline2\r\n"; "100%"; "%20"; "mixed %\n\t end " ]
  in
  List.iter
    (fun s -> check_string ("round trip " ^ String.escaped s) s (P.decode (P.encode s)))
    cases;
  check_bool "encoded output has no raw space/newline" true
    (String.for_all
       (fun c -> c <> ' ' && c <> '\n' && c <> '\t' && c <> '\r')
       (P.encode "a b\nc\td\r%"))

let test_decode_rejects_bad_escapes () =
  List.iter
    (fun s ->
      match P.decode s with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail ("decode accepted " ^ s))
    [ "%"; "%2"; "%zz"; "trailing%2" ]

(* ---- protocol: command and response round trips ---- *)

let sample_source = "global out: int[64];\n\nkernel k(n: int) {\n  out[tid()] = n;\n}\n"

let round_trip_command cmd =
  match P.parse_command (P.print_command cmd) with
  | Ok parsed -> check_string "command round trip" (P.print_command cmd) (P.print_command parsed)
  | Error msg -> Alcotest.fail ("printed command failed to parse: " ^ msg)

let test_command_round_trips () =
  round_trip_command (P.Run (P.make_request ~id:3 ~source:sample_source ()));
  round_trip_command
    (P.Run
       (P.make_request ~id:7 ~mode:"baseline" ~policy:"round-robin" ~warps:4 ~warp_size:16
          ~seed:99 ~coarsen:8 ~threshold:(-1) ~entry:"k"
          ~args:[ Ir.Types.I 42; Ir.Types.F 0.5; Ir.Types.F (-1.25) ]
          ~init:"data" ~source:sample_source ()));
  round_trip_command (P.Run (P.make_request ~id:8 ~deadline:5000 ~source:sample_source ()));
  round_trip_command (P.Stats 12);
  round_trip_command P.Quit;
  round_trip_command P.Shutdown

let round_trip_response resp =
  match P.parse_response (P.print_response resp) with
  | Ok parsed ->
    check_string "response round trip" (P.print_response resp) (P.print_response parsed)
  | Error msg -> Alcotest.fail ("printed response failed to parse: " ^ msg)

let test_response_round_trips () =
  round_trip_response
    (P.Ok_run
       {
         P.rid = 5;
         cache = P.Hit;
         hits = 3;
         misses = 2;
         evictions = 1;
         cycles = 1234;
         issues = 5678;
         active = 90;
         finished = 64;
         digest = 0x0903df3e9e8ada03;
       });
  round_trip_response
    (P.Error { rid = 9; code = 4; kind = "syntax"; msg = "line 2: unexpected token\nhint" });
  round_trip_response (P.Overloaded { rid = 11; retry_after = None });
  round_trip_response (P.Overloaded { rid = 12; retry_after = Some 3 });
  round_trip_response (P.Deadline { rid = 13; fuel = 5000 });
  round_trip_response
    (P.Stats_reply
       {
         rid = 1;
         hits = 10;
         misses = 4;
         evictions = 2;
         entries = 2;
         served = 14;
         phits = 3;
         pcorrupt = 1;
       });
  round_trip_response P.Bye

let test_malformed_commands () =
  List.iter
    (fun line ->
      match P.parse_command line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("parser accepted " ^ line))
    [
      "launch id=1 source=x";       (* unknown head *)
      "run id=1";                    (* missing source *)
      "run id=1 source=x bogus=1";   (* unknown key *)
      "run id=nope source=x";        (* bad integer *)
      "run id=1 mode=jit source=x";  (* unknown mode *)
      "run id=1 policy=fifo source=x";
      "run id=1 init=random source=x";
      "run id=1 source=%zz";         (* bad escape *)
      "run id=1 id=2 source=x";      (* duplicate key *)
      "run id=1 deadline=-1 source=x"; (* negative deadline *)
      "ok rid=1";                    (* response head on the request side *)
    ]

(* ---- cache ---- *)

(* FNV-1a 64 pins (offset basis and the canonical "a" vector), folded to
   a non-negative OCaml int the way the cache stores them. *)
let test_digest_pins () =
  check_int "fnv-1a of empty" (Int64.to_int 0xcbf29ce484222325L land max_int) (Cache.digest "");
  check_int "fnv-1a of a" (Int64.to_int 0xaf63dc4c8601ec8cL land max_int) (Cache.digest "a");
  check_bool "digest differs on content" true (Cache.digest "kernel a" <> Cache.digest "kernel b");
  check_bool "digest is stable" true (Cache.digest sample_source = Cache.digest sample_source)

let test_cache_hit_after_miss () =
  let c = Cache.create ~capacity:4 in
  let builds = ref 0 in
  let build () = incr builds; "artifact" in
  let s1, v1 = Cache.find_or_add c ~key:"k" build in
  let s2, v2 = Cache.find_or_add c ~key:"k" build in
  check_bool "first is a miss" true (s1 = P.Miss);
  check_bool "second is a hit" true (s2 = P.Hit);
  check_int "built exactly once" 1 !builds;
  check_bool "hit returns the identical artifact" true (v1 == v2);
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c);
  check_int "entries" 1 (Cache.length c)

let test_cache_eviction_at_capacity () =
  let c = Cache.create ~capacity:2 in
  let add k = ignore (Cache.find_or_add c ~key:k (fun () -> k)) in
  add "a";
  add "b";
  check_int "no eviction while below capacity" 0 (Cache.evictions c);
  add "c" (* evicts the least recently used: "a" *);
  check_int "one eviction at capacity" 1 (Cache.evictions c);
  check_int "still at capacity" 2 (Cache.length c);
  check_bool "stalest key evicted" false (Cache.mem c ~key:"a");
  check_bool "recent keys resident" true (Cache.mem c ~key:"b" && Cache.mem c ~key:"c");
  (* Touching "b" makes "c" the LRU entry. *)
  add "b";
  add "d";
  check_bool "recency updated on hit" true (Cache.mem c ~key:"b");
  check_bool "untouched entry evicted" false (Cache.mem c ~key:"c")

let test_cache_capacity_zero_disabled () =
  let c = Cache.create ~capacity:0 in
  let builds = ref 0 in
  let build () = incr builds; () in
  ignore (Cache.find_or_add c ~key:"k" build);
  ignore (Cache.find_or_add c ~key:"k" build);
  check_int "every lookup rebuilds" 2 !builds;
  check_int "nothing retained" 0 (Cache.length c);
  check_int "no hits" 0 (Cache.hits c);
  check_int "all misses" 2 (Cache.misses c)

let test_cache_failed_build_not_cached () =
  let c = Cache.create ~capacity:4 in
  (match Cache.find_or_add c ~key:"k" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected the build failure to propagate");
  check_int "failure still counts as a miss" 1 (Cache.misses c);
  check_int "failure never cached" 0 (Cache.length c);
  let status, v = Cache.find_or_add c ~key:"k" (fun () -> "ok") in
  check_bool "retry is a fresh miss" true (status = P.Miss && v = "ok")

(* ---- server ---- *)

let ok_source = "global out: int[64];\n\nkernel k() {\n  out[tid()] = tid();\n}\n"
let other_source = "global out: int[64];\n\nkernel k() {\n  out[tid()] = 2 * tid();\n}\n"

let reply_exn = function
  | P.Ok_run r -> r
  | other -> Alcotest.failf "expected ok, got: %s" (P.print_response other)

let test_server_hit_after_miss () =
  let server = Server.create ~cache_capacity:8 () in
  let req id = P.Run (P.make_request ~id ~warps:1 ~source:ok_source ()) in
  match Server.submit server [ req 0; req 1 ] with
  | [ first; second ] ->
    let a = reply_exn first and b = reply_exn second in
    check_bool "first is a miss" true (a.P.cache = P.Miss);
    check_bool "second is a hit" true (b.P.cache = P.Hit);
    check_int "counters after miss: hits" 0 a.P.hits;
    check_int "counters after miss: misses" 1 a.P.misses;
    check_int "counters after hit: hits" 1 b.P.hits;
    check_int "counters after hit: misses" 1 b.P.misses;
    check_bool "hit reproduces the digest" true (a.P.digest = b.P.digest);
    check_bool "hit reproduces the metrics" true
      (a.P.cycles = b.P.cycles && a.P.issues = b.P.issues && a.P.finished = b.P.finished);
    check_int "both launches served" 2 (Server.served server)
  | other -> Alcotest.failf "expected 2 responses, got %d" (List.length other)

let test_server_eviction () =
  let server = Server.create ~cache_capacity:1 () in
  let req id source = P.Run (P.make_request ~id ~warps:1 ~source ()) in
  let responses =
    Server.submit server [ req 0 ok_source; req 1 other_source; req 2 ok_source ]
  in
  check_int "three responses" 3 (List.length responses);
  (* Capacity 1: each distinct source evicts the previous one, so the
     re-submitted first kernel misses again. *)
  check_int "all misses" 3 (Server.cache_misses server);
  check_int "no hits" 0 (Server.cache_hits server);
  check_int "two evictions" 2 (Server.cache_evictions server);
  check_int "one resident entry" 1 (Server.cache_entries server)

let test_server_overloaded () =
  let server = Server.create ~cache_capacity:8 ~max_inflight:1 () in
  let req id = P.Run (P.make_request ~id ~warps:1 ~source:ok_source ()) in
  (match Server.submit server [ req 0; req 1; req 2 ] with
  | [ P.Ok_run _;
      P.Overloaded { rid = 1; retry_after = None };
      P.Overloaded { rid = 2; retry_after = None } ] -> ()
  | other ->
    Alcotest.failf "expected ok + 2 overloaded, got: %s"
      (String.concat " | " (List.map P.print_response other)));
  (* Bounced requests were never admitted: no cache traffic, not served. *)
  check_int "one served" 1 (Server.served server);
  check_int "one miss only" 1 (Server.cache_misses server);
  check_int "no hits" 0 (Server.cache_hits server);
  (* A retry of a bounced request later succeeds (and hits the cache). *)
  match Server.submit server [ req 1 ] with
  | [ P.Ok_run r ] -> check_bool "retry hits" true (r.P.cache = P.Hit)
  | other -> Alcotest.failf "retry failed: %d response(s)" (List.length other)

(* Per-request failures map to exactly the exit code the one-shot tools
   would have died with, and never tear the server down. *)
let test_server_error_codes () =
  let server = Server.create ~cache_capacity:8 () in
  let expect_error name code kind resp =
    match resp with
    | P.Error e ->
      check_int (name ^ " code") code e.code;
      check_string (name ^ " kind") kind e.kind
    | other -> Alcotest.failf "%s: expected error, got: %s" name (P.print_response other)
  in
  let syntax = P.Run (P.make_request ~id:0 ~source:"kernel k( {" ()) in
  let compile = P.Run (P.make_request ~id:1 ~source:"kernel k() {\n  x = 1;\n}\n" ()) in
  let runtime =
    P.Run (P.make_request ~id:2 ~warps:1 ~source:"global out: int[4];\n\nkernel k() {\n  out[tid()] = 1;\n}\n" ())
  in
  let usage = P.Run (P.make_request ~id:3 ~warps:0 ~source:ok_source ()) in
  let healthy = P.Run (P.make_request ~id:4 ~warps:1 ~source:ok_source ()) in
  match Server.submit server [ syntax; compile; runtime; usage; healthy ] with
  | [ r0; r1; r2; r3; r4 ] ->
    expect_error "syntax" 4 "syntax" r0;
    expect_error "compile" 5 "compile" r1;
    expect_error "runtime" 7 "runtime" r2;
    expect_error "usage" 2 "usage" r3;
    check_bool "server survives bad requests" true
      (match r4 with P.Ok_run _ -> true | _ -> false)
  | other -> Alcotest.failf "expected 5 responses, got %d" (List.length other)

let test_server_stats_and_lines () =
  let server = Server.create ~cache_capacity:8 () in
  let run id = P.print_command (P.Run (P.make_request ~id ~warps:1 ~source:ok_source ())) in
  let lines = [ run 0; "nonsense line"; run 1; P.print_command (P.Stats 7) ] in
  match Server.submit_lines server lines with
  | [ l0; l1; l2; l3 ] ->
    check_bool "first ok" true
      (match P.parse_response l0 with Ok (P.Ok_run _) -> true | _ -> false);
    (* Malformed lines answer in place with the usage code. *)
    (match P.parse_response l1 with
    | Ok (P.Error e) ->
      check_int "malformed code" 2 e.code;
      check_string "malformed kind" "malformed" e.kind
    | _ -> Alcotest.fail "malformed line did not answer with an error");
    check_bool "third ok" true
      (match P.parse_response l2 with Ok (P.Ok_run _) -> true | _ -> false);
    (match P.parse_response l3 with
    | Ok (P.Stats_reply s) ->
      check_int "stats echoes id" 7 s.rid;
      check_int "stats hits" 1 s.hits;
      check_int "stats misses" 1 s.misses;
      check_int "stats served" 2 s.served
    | _ -> Alcotest.fail "stats line did not answer with a stats reply")
  | other -> Alcotest.failf "expected 4 response lines, got %d" (List.length other)

(* The cached artifact is the same immutable Ir.Decoded the fresh
   compile produced — not a re-decode, not a copy that could drift. *)
let test_server_hit_serves_identical_artifact () =
  let options =
    {
      Core.Compile.mode = Core.Compile.Speculative Passes.Deconflict.Dynamic;
      coarsen = None;
      threshold = Core.Compile.Keep;
      cleanup = true;
      deconflict = true;
      lint = true;
      race = true;
      repair = Core.Compile.No_repair;
    }
  in
  let cache = Cache.create ~capacity:2 in
  let build () = Core.Compile.compile options ~source:ok_source in
  let _, fresh = Cache.find_or_add cache ~key:"k" build in
  let status, cached = Cache.find_or_add cache ~key:"k" build in
  check_bool "second lookup hits" true (status = P.Hit);
  check_bool "hit is physically the same artifact" true (fresh == cached);
  check_string "identical decoded program"
    (Format.asprintf "%a" Ir.Decoded.pp fresh.Core.Compile.decoded)
    (Format.asprintf "%a" Ir.Decoded.pp cached.Core.Compile.decoded)

(* ---- persistence, deadlines, drain ---- *)

let temp_dir () =
  let path = Filename.temp_file "srserve_test" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_persist_round_trip () =
  with_temp_dir (fun dir ->
      let p = Serve.Persist.create ~dir in
      check_bool "missing key is a plain miss" true (Serve.Persist.load p ~key:"k" = None);
      check_int "missing key is not corruption" 0 (Serve.Persist.corrupt p);
      Serve.Persist.store p ~key:"k" [ 1; 2; 3 ];
      check_bool "stored value loads back" true (Serve.Persist.load p ~key:"k" = Some [ 1; 2; 3 ]);
      check_int "one persist hit" 1 (Serve.Persist.hits p);
      (* A different key hashing to a different file stays a miss. *)
      check_bool "other key misses" true ((Serve.Persist.load p ~key:"other" : int list option) = None);
      (* Crash-safety residue: a stray .tmp never shadows the entry. *)
      check_bool "no tmp residue after store" true
        (Array.for_all
           (fun f -> not (Filename.check_suffix f ".tmp"))
           (Sys.readdir dir)))

let corrupt_every_entry dir =
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".art" then begin
        let path = Filename.concat dir f in
        let oc = open_out_bin path in
        output_string oc "srpersist1 garbage";
        close_out oc
      end)
    (Sys.readdir dir)

let truncate_every_entry dir =
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".art" then begin
        let path = Filename.concat dir f in
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let half = really_input_string ic (n / 2) in
        close_in ic;
        let oc = open_out_bin path in
        output_string oc half;
        close_out oc
      end)
    (Sys.readdir dir)

let test_persist_corruption_degrades_to_miss () =
  with_temp_dir (fun dir ->
      let p = Serve.Persist.create ~dir in
      Serve.Persist.store p ~key:"k" "payload";
      truncate_every_entry dir;
      check_bool "truncated entry is a miss" true ((Serve.Persist.load p ~key:"k" : string option) = None);
      check_int "truncation counted as corrupt" 1 (Serve.Persist.corrupt p);
      Serve.Persist.store p ~key:"k" "payload";
      corrupt_every_entry dir;
      check_bool "mangled entry is a miss" true ((Serve.Persist.load p ~key:"k" : string option) = None);
      check_int "mangling counted as corrupt" 2 (Serve.Persist.corrupt p);
      check_int "no hits from corrupt entries" 0 (Serve.Persist.hits p))

(* A restarted server with the same persist dir must answer the same
   trace with a byte-identical run-response stream (persist loads commit
   as in-memory misses), visible only as phits in stats. *)
let test_server_persist_restart () =
  with_temp_dir (fun dir ->
      let trace =
        [
          P.Run (P.make_request ~id:0 ~warps:1 ~source:ok_source ());
          P.Run (P.make_request ~id:1 ~warps:1 ~source:other_source ());
          P.Run (P.make_request ~id:2 ~warps:1 ~source:ok_source ());
        ]
      in
      let render server = List.map P.print_response (Server.submit server trace) in
      let cold = Server.create ~cache_capacity:8 ~persist_dir:dir () in
      let cold_lines = render cold in
      check_int "cold run persisted nothing from disk" 0 (Server.persist_hits cold);
      (* "Restart": a brand-new server over the same directory. *)
      let warm = Server.create ~cache_capacity:8 ~persist_dir:dir () in
      let warm_lines = render warm in
      List.iteri
        (fun i (a, b) -> check_string (Printf.sprintf "response %d byte-identical" i) a b)
        (List.combine cold_lines warm_lines);
      check_bool "restart answered from the persistent store" true (Server.persist_hits warm > 0);
      check_int "no corruption seen" 0 (Server.persist_corrupt warm);
      (* Corrupt the store: a third server still answers identically,
         counting the damage. *)
      truncate_every_entry dir;
      let hurt = Server.create ~cache_capacity:8 ~persist_dir:dir () in
      let hurt_lines = render hurt in
      List.iteri
        (fun i (a, b) ->
          check_string (Printf.sprintf "post-corruption response %d byte-identical" i) a b)
        (List.combine cold_lines hurt_lines);
      check_bool "corruption detected" true (Server.persist_corrupt hurt > 0);
      check_int "corrupt entries served no hits" 0 (Server.persist_hits hurt))

let loop_source =
  "global out: int[64];\n\n\
   kernel k() {\n\
  \  var j: int = 0;\n\
  \  while (j < 1000) {\n\
  \    j = j + 1;\n\
  \  }\n\
  \  out[tid()] = j;\n\
   }\n"

let test_server_deadline () =
  (* Server-default fuel: the loop kernel exhausts it; the server
     survives and the next healthy request still answers. *)
  let server = Server.create ~cache_capacity:8 ~fuel:50 () in
  let loop id = P.Run (P.make_request ~id ~warps:1 ~source:loop_source ()) in
  (match Server.submit server [ loop 0 ] with
  | [ P.Deadline { rid = 0; fuel = 50 } ] -> ()
  | other ->
    Alcotest.failf "expected deadline, got: %s"
      (String.concat " | " (List.map P.print_response other)));
  (* A per-request override lifts the default (0 = unlimited)... *)
  (match Server.submit server [ P.Run (P.make_request ~id:1 ~warps:1 ~deadline:0 ~source:loop_source ()) ] with
  | [ P.Ok_run _ ] -> ()
  | other ->
    Alcotest.failf "deadline=0 override should run to completion, got: %s"
      (String.concat " | " (List.map P.print_response other)));
  (* ... and tightens it on a server with no default. *)
  let unbounded = Server.create ~cache_capacity:8 () in
  (match Server.submit unbounded [ P.Run (P.make_request ~id:2 ~warps:1 ~deadline:50 ~source:loop_source ()) ] with
  | [ P.Deadline { rid = 2; fuel = 50 } ] -> ()
  | other ->
    Alcotest.failf "expected per-request deadline, got: %s"
      (String.concat " | " (List.map P.print_response other)));
  (* Deadline outcomes count as served (the launch consumed resources). *)
  check_int "deadline counts as served" 2 (Server.served server);
  match Server.submit server [ P.Run (P.make_request ~id:3 ~warps:1 ~source:ok_source ()) ] with
  | [ P.Ok_run _ ] -> ()
  | other ->
    Alcotest.failf "server did not survive a deadline: %s"
      (String.concat " | " (List.map P.print_response other))

(* The one-shot mapping: the same fuel exhaustion classifies to exit 9. *)
let test_deadline_exit_code () =
  let config = { Simt.Config.default with Simt.Config.n_warps = 1; fuel = 50 } in
  let options =
    {
      Core.Compile.mode = Core.Compile.Speculative Passes.Deconflict.Dynamic;
      coarsen = None;
      threshold = Core.Compile.Keep;
      cleanup = true;
      deconflict = true;
      lint = true;
      race = true;
      repair = Core.Compile.No_repair;
    }
  in
  match Core.Runner.run_source ~config options ~source:loop_source ~args:[] with
  | _ -> Alcotest.fail "expected the fuel budget to expire"
  | exception exn -> (
    match Core.Cli.classify exn with
    | Some outcome ->
      check_int "fuel exhaustion is exit 9" 9 (Core.Cli.exit_code outcome);
      check_string "server kind is deadline" "deadline"
        (fst (Server.outcome_kind_and_message outcome))
    | None -> Alcotest.fail "deadline exception not classified")

let test_server_drain () =
  let server = Server.create ~cache_capacity:8 ~retry_after:2 () in
  let run id = P.Run (P.make_request ~id ~warps:1 ~source:ok_source ()) in
  (* Work submitted before the shutdown completes and is answered;
     work after it bounces with the back-off hint. *)
  (match Server.submit server [ run 0; P.Shutdown; run 1 ] with
  | [ P.Ok_run { P.rid = 0; _ }; P.Bye; P.Overloaded { rid = 1; retry_after = Some 2 } ] -> ()
  | other ->
    Alcotest.failf "drain batch answered: %s"
      (String.concat " | " (List.map P.print_response other)));
  check_bool "server is draining" true (Server.draining server);
  (* Draining persists across batches; stats still answers. *)
  match Server.submit server [ run 2; P.Stats 9 ] with
  | [ P.Overloaded { rid = 2; retry_after = Some 2 }; P.Stats_reply s ] ->
    check_int "stats answers while draining" 9 s.rid;
    check_int "drained launch was served before shutdown" 1 s.served
  | other ->
    Alcotest.failf "draining server answered: %s"
      (String.concat " | " (List.map P.print_response other))

(* ---- the registry differential: serve vs one-shot ---- *)

(* Every Table-2 workload through the server must answer with exactly
   the metrics and memory digest the one-shot pipeline produces for the
   same compile options and launch configuration. *)
let test_registry_differential () =
  let server = Server.create ~cache_capacity:64 () in
  List.iter
    (fun (spec : Workloads.Spec.t) ->
      let request =
        P.make_request ~id:0 ~warps:1 ?coarsen:spec.Workloads.Spec.coarsen
          ~args:spec.Workloads.Spec.args ~source:spec.Workloads.Spec.source ()
      in
      let served =
        match Server.submit server [ P.Run request ] with
        | [ P.Ok_run r ] -> r
        | [ other ] ->
          Alcotest.failf "%s: server answered %s" spec.Workloads.Spec.name
            (P.print_response other)
        | other -> Alcotest.failf "%s: %d responses" spec.Workloads.Spec.name (List.length other)
      in
      let options =
        {
          Core.Compile.mode = Core.Compile.Speculative Passes.Deconflict.Dynamic;
          coarsen = spec.Workloads.Spec.coarsen;
          threshold = Core.Compile.Keep;
          cleanup = true;
          deconflict = true;
          lint = true;
          race = true;
          repair = Core.Compile.No_repair;
        }
      in
      let config =
        { Simt.Config.default with
          Simt.Config.n_warps = 1;
          warp_size = 32;
          policy = Simt.Config.Most_threads;
          seed = 11;
          max_issues = 1_500_000 }
      in
      let oneshot =
        Core.Runner.run_source ~config options ~source:spec.Workloads.Spec.source
          ~args:spec.Workloads.Spec.args
      in
      let m = oneshot.Core.Runner.metrics in
      let name = spec.Workloads.Spec.name in
      check_int (name ^ " cycles") m.Simt.Metrics.cycles served.P.cycles;
      check_int (name ^ " issues") m.Simt.Metrics.issues served.P.issues;
      check_int (name ^ " active") m.Simt.Metrics.active_sum served.P.active;
      check_int (name ^ " finished") m.Simt.Metrics.threads_finished served.P.finished;
      check_int (name ^ " digest") (Simt.Memsys.digest oneshot.Core.Runner.memory)
        served.P.digest)
    Workloads.Registry.all

let tests =
  [
    ( "serve.protocol",
      [
        Alcotest.test_case "percent encoding round trips" `Quick test_encode_round_trip;
        Alcotest.test_case "bad escapes rejected" `Quick test_decode_rejects_bad_escapes;
        Alcotest.test_case "command round trips" `Quick test_command_round_trips;
        Alcotest.test_case "response round trips" `Quick test_response_round_trips;
        Alcotest.test_case "malformed commands rejected" `Quick test_malformed_commands;
      ] );
    ( "serve.cache",
      [
        Alcotest.test_case "fnv-1a digest pins" `Quick test_digest_pins;
        Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
        Alcotest.test_case "lru eviction at capacity" `Quick test_cache_eviction_at_capacity;
        Alcotest.test_case "capacity 0 disables" `Quick test_cache_capacity_zero_disabled;
        Alcotest.test_case "failed builds never cached" `Quick test_cache_failed_build_not_cached;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "hit after miss with identical reply" `Quick
          test_server_hit_after_miss;
        Alcotest.test_case "eviction under capacity pressure" `Quick test_server_eviction;
        Alcotest.test_case "backpressure bounces beyond max-inflight" `Quick
          test_server_overloaded;
        Alcotest.test_case "error responses carry the 0-8 codes" `Quick test_server_error_codes;
        Alcotest.test_case "stats and malformed lines answer in place" `Quick
          test_server_stats_and_lines;
        Alcotest.test_case "cache hit serves the identical artifact" `Quick
          test_server_hit_serves_identical_artifact;
        Alcotest.test_case "full registry matches the one-shot pipeline" `Slow
          test_registry_differential;
      ] );
    ( "serve.robustness",
      [
        Alcotest.test_case "persist round trip" `Quick test_persist_round_trip;
        Alcotest.test_case "persist corruption degrades to a miss" `Quick
          test_persist_corruption_degrades_to_miss;
        Alcotest.test_case "restart answers byte-identical from the store" `Quick
          test_server_persist_restart;
        Alcotest.test_case "deadlines answer and the server survives" `Quick
          test_server_deadline;
        Alcotest.test_case "fuel exhaustion is exit 9 one-shot" `Quick test_deadline_exit_code;
        Alcotest.test_case "shutdown drains then bounces with retry-after" `Quick
          test_server_drain;
      ] );
  ]
