(* Tests for the SIMT simulator: value operations, the memory system,
   the convergence-barrier unit, metrics, and the interpreter (execution
   semantics, divergence behaviour, barrier semantics, error handling,
   determinism). *)

module T = Ir.Types
module B = Ir.Builder
module Mask = Support.Mask

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---- Valops ---- *)

let test_valops_int () =
  let open T in
  check_bool "add" true (Simt.Valops.binop Add (I 2) (I 3) = I 5);
  check_bool "div" true (Simt.Valops.binop Div (I 7) (I 2) = I 3);
  check_bool "rem" true (Simt.Valops.binop Rem (I 7) (I 2) = I 1);
  check_bool "min" true (Simt.Valops.binop Min (I 7) (I 2) = I 2);
  check_bool "shl" true (Simt.Valops.binop Shl (I 1) (I 4) = I 16);
  check_bool "lt true" true (Simt.Valops.binop Lt (I 1) (I 2) = I 1);
  check_bool "lt false" true (Simt.Valops.binop Lt (I 2) (I 1) = I 0);
  (match Simt.Valops.binop Div (I 1) (I 0) with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "expected Division_by_zero");
  match Simt.Valops.binop Add (I 1) (F 2.0) with
  | exception Simt.Valops.Type_error _ -> ()
  | _ -> Alcotest.fail "expected Type_error"

let test_valops_float () =
  let open T in
  check_bool "fadd" true (Simt.Valops.binop Fadd (F 1.5) (F 2.5) = F 4.0);
  check_bool "fmax" true (Simt.Valops.binop Fmax (F 1.5) (F 2.5) = F 2.5);
  check_bool "fge" true (Simt.Valops.binop Fge (F 2.5) (F 2.5) = I 1);
  check_bool "sqrt" true (Simt.Valops.unop Sqrt (F 4.0) = F 2.0);
  check_bool "itof" true (Simt.Valops.unop Itof (I 3) = F 3.0);
  check_bool "ftoi" true (Simt.Valops.unop Ftoi (F 3.7) = I 3);
  check_bool "not" true (Simt.Valops.unop Not (I 0) = I 1);
  match Simt.Valops.unop Sqrt (I 4) with
  | exception Simt.Valops.Type_error _ -> ()
  | _ -> Alcotest.fail "expected Type_error"

let test_valops_truthy () =
  let open T in
  check_bool "zero false" false (Simt.Valops.truthy (I 0));
  check_bool "nonzero true" true (Simt.Valops.truthy (I (-3)));
  check_bool "0.0 false" false (Simt.Valops.truthy (F 0.0));
  check_bool "float true" true (Simt.Valops.truthy (F 0.5))

(* ---- Memsys ---- *)

let mem_config = Simt.Config.default.Simt.Config.memory

let test_memsys_rw () =
  let m = Simt.Memsys.create mem_config ~size:16 in
  Simt.Memsys.write m 3 (T.F 1.5);
  check_bool "read back" true (Simt.Memsys.read m 3 = T.F 1.5);
  check_bool "default zero" true (Simt.Memsys.read m 0 = T.I 0);
  check_int "size" 16 (Simt.Memsys.size m);
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected bounds error"
  in
  invalid (fun () -> Simt.Memsys.read m 16);
  invalid (fun () -> Simt.Memsys.read m (-1));
  invalid (fun () -> Simt.Memsys.write m 99 (T.I 0));
  invalid (fun () -> Simt.Memsys.dump m ~base:10 ~len:10)

let test_memsys_coalescing () =
  let m = Simt.Memsys.create mem_config ~size:4096 in
  (* all lanes in one 16-word line: one transaction, base latency *)
  let coalesced = Simt.Memsys.access_cost m ~addrs:(List.init 16 (fun i -> i)) in
  check_int "coalesced cost" mem_config.Simt.Config.base_latency coalesced;
  (* 32 lanes hitting 32 distinct lines: 31 extra transactions *)
  let scattered = Simt.Memsys.access_cost m ~addrs:(List.init 32 (fun i -> i * 16)) in
  check_int "scattered cost"
    (mem_config.Simt.Config.base_latency + (31 * mem_config.Simt.Config.per_transaction))
    scattered;
  check_int "empty access free" 0 (Simt.Memsys.access_cost m ~addrs:[]);
  let stats = Simt.Memsys.stats m in
  check_int "transactions counted" (1 + 32) stats.Simt.Memsys.transactions

let test_memsys_cache () =
  let config =
    { mem_config with Simt.Config.cache = Some { Simt.Config.sets = 4; ways = 2; hit_latency = 5 } }
  in
  let m = Simt.Memsys.create config ~size:4096 in
  let miss_cost = Simt.Memsys.access_cost m ~addrs:[ 0 ] in
  check_int "first touch misses" config.Simt.Config.base_latency miss_cost;
  let hit_cost = Simt.Memsys.access_cost m ~addrs:[ 0 ] in
  check_int "second touch hits" 5 hit_cost;
  (* fill the set until line 0 is evicted: set index = line mod 4, so
     lines 32/64 (i.e. addresses 512, 1024) map to set 0 as line 0 does *)
  ignore (Simt.Memsys.access_cost m ~addrs:[ 512 ]);
  ignore (Simt.Memsys.access_cost m ~addrs:[ 1024 ]);
  let evicted = Simt.Memsys.access_cost m ~addrs:[ 0 ] in
  check_int "evicted misses again" config.Simt.Config.base_latency evicted;
  let stats = Simt.Memsys.stats m in
  check_bool "hits and misses recorded" true
    (stats.Simt.Memsys.hits >= 1 && stats.Simt.Memsys.misses >= 3)

(* ---- Barrier unit ---- *)

let test_barrier_basic_fire () =
  let u = Simt.Barrier_unit.create ~n_barriers:2 ~warp_size:4 in
  List.iter (fun l -> Simt.Barrier_unit.join u 0 l) [ 0; 1; 2 ];
  check_bool "participant" true (Simt.Barrier_unit.is_participant u 0 1);
  check_bool "lane 3 not in" false (Simt.Barrier_unit.is_participant u 0 3);
  Simt.Barrier_unit.block u 0 0 ~threshold:None;
  check_bool "no fire yet" true (Simt.Barrier_unit.fired u 0 = None);
  check_int "arrived" 1 (Simt.Barrier_unit.arrived u 0);
  Simt.Barrier_unit.block u 0 1 ~threshold:None;
  Simt.Barrier_unit.block u 0 2 ~threshold:None;
  (match Simt.Barrier_unit.fired u 0 with
  | Some released -> check_int "all released" 3 (Mask.count released)
  | None -> Alcotest.fail "expected fire");
  check_bool "participants cleared" true (Mask.is_empty (Simt.Barrier_unit.participants u 0))

let test_barrier_cancel_completes () =
  let u = Simt.Barrier_unit.create ~n_barriers:1 ~warp_size:4 in
  List.iter (fun l -> Simt.Barrier_unit.join u 0 l) [ 0; 1 ];
  Simt.Barrier_unit.block u 0 0 ~threshold:None;
  check_bool "waiting on lane 1" true (Simt.Barrier_unit.fired u 0 = None);
  Simt.Barrier_unit.cancel u 0 1;
  match Simt.Barrier_unit.fired u 0 with
  | Some released -> check_int "lane 0 released" 1 (Mask.count released)
  | None -> Alcotest.fail "cancel should complete the barrier"

let test_barrier_threshold () =
  let u = Simt.Barrier_unit.create ~n_barriers:1 ~warp_size:8 in
  List.iter (fun l -> Simt.Barrier_unit.join u 0 l) [ 0; 1; 2; 3; 4; 5 ];
  Simt.Barrier_unit.block u 0 0 ~threshold:(Some 3);
  Simt.Barrier_unit.block u 0 1 ~threshold:(Some 3);
  check_bool "below threshold holds" true (Simt.Barrier_unit.fired u 0 = None);
  Simt.Barrier_unit.block u 0 2 ~threshold:(Some 3);
  (match Simt.Barrier_unit.fired u 0 with
  | Some released ->
    check_int "exactly the waiters released" 3 (Mask.count released);
    (* the rest still participate *)
    check_int "remaining participants" 3 (Mask.count (Simt.Barrier_unit.participants u 0))
  | None -> Alcotest.fail "threshold should fire");
  (* threshold 0 releases immediately *)
  Simt.Barrier_unit.block u 0 4 ~threshold:(Some 0);
  match Simt.Barrier_unit.fired u 0 with
  | Some released -> check_int "solo release" 1 (Mask.count released)
  | None -> Alcotest.fail "threshold 0 should fire at once"

let test_barrier_withdraw () =
  let u = Simt.Barrier_unit.create ~n_barriers:3 ~warp_size:4 in
  Simt.Barrier_unit.join u 0 0;
  Simt.Barrier_unit.join u 2 0;
  Simt.Barrier_unit.join u 2 1;
  let affected = Simt.Barrier_unit.withdraw_lane u 0 in
  check (Alcotest.list Alcotest.int) "withdrawn from both" [ 0; 2 ] affected;
  check_bool "gone from b2" false (Simt.Barrier_unit.is_participant u 2 0);
  check_bool "lane 1 remains" true (Simt.Barrier_unit.is_participant u 2 1)

let test_barrier_threshold_withdraw_completes () =
  (* A pending soft (threshold) wait must full-fire when withdrawals
     shrink the participation mask down to exactly the blocked lanes,
     even though the threshold itself is never met. *)
  let u = Simt.Barrier_unit.create ~n_barriers:1 ~warp_size:8 in
  List.iter (fun l -> Simt.Barrier_unit.join u 0 l) [ 0; 1; 2; 3 ];
  Simt.Barrier_unit.block u 0 0 ~threshold:(Some 3);
  Simt.Barrier_unit.block u 0 1 ~threshold:(Some 3);
  check_bool "2 of 4 below threshold 3" true (Simt.Barrier_unit.fired u 0 = None);
  ignore (Simt.Barrier_unit.withdraw_lane u 2);
  check_bool "3 participants, 2 blocked: still held" true (Simt.Barrier_unit.fired u 0 = None);
  ignore (Simt.Barrier_unit.withdraw_lane u 3);
  (match Simt.Barrier_unit.fired u 0 with
  | Some released -> check_bool "remaining blocked lanes released" true
      (Mask.to_list released = [ 0; 1 ])
  | None -> Alcotest.fail "withdrawals should complete the pending threshold wait");
  check_bool "participants cleared by full fire" true
    (Mask.is_empty (Simt.Barrier_unit.participants u 0))

let test_barrier_cancel_during_threshold () =
  (* BREAK while a BSYNC.TH is pending: cancels shrink participation
     until the full-fire condition takes over. *)
  let u = Simt.Barrier_unit.create ~n_barriers:1 ~warp_size:8 in
  List.iter (fun l -> Simt.Barrier_unit.join u 0 l) [ 0; 1; 2; 3; 4 ];
  Simt.Barrier_unit.block u 0 0 ~threshold:(Some 4);
  Simt.Barrier_unit.block u 0 1 ~threshold:(Some 4);
  Simt.Barrier_unit.cancel u 0 2;
  Simt.Barrier_unit.cancel u 0 3;
  check_bool "2 blocked of 3 left: held" true (Simt.Barrier_unit.fired u 0 = None);
  Simt.Barrier_unit.cancel u 0 4;
  match Simt.Barrier_unit.fired u 0 with
  | Some released ->
    check_bool "blocked lanes released on last cancel" true (Mask.to_list released = [ 0; 1 ])
  | None -> Alcotest.fail "cancel should complete the pending threshold wait"

let test_barrier_force_release () =
  (* The yield-recovery primitive: release the blocked lanes regardless
     of the fire condition, with threshold-fire bookkeeping (released
     lanes leave the participation mask, the rest stay). *)
  let u = Simt.Barrier_unit.create ~n_barriers:2 ~warp_size:8 in
  List.iter (fun l -> Simt.Barrier_unit.join u 0 l) [ 0; 1; 2; 3 ];
  Simt.Barrier_unit.block ~now:9 u 0 1 ~threshold:None;
  Simt.Barrier_unit.block ~now:5 u 0 0 ~threshold:None;
  check_bool "oldest arrival is the earliest stamp" true
    (Simt.Barrier_unit.oldest_arrival u 0 = Some 5);
  (match Simt.Barrier_unit.force_release u 0 with
  | Some released -> check_bool "releases exactly the waiters" true
      (Mask.to_list released = [ 0; 1 ])
  | None -> Alcotest.fail "force_release with waiters must release them");
  check_bool "released lanes left the participation mask" true
    (Mask.to_list (Simt.Barrier_unit.participants u 0) = [ 2; 3 ]);
  check_bool "nothing waiting afterwards" true
    (Mask.is_empty (Simt.Barrier_unit.waiting u 0));
  check_bool "oldest arrival cleared" true (Simt.Barrier_unit.oldest_arrival u 0 = None);
  check_bool "idempotent on an idle barrier" true (Simt.Barrier_unit.force_release u 0 = None);
  check_bool "no-op on an unused barrier" true (Simt.Barrier_unit.force_release u 1 = None)

let test_barrier_errors () =
  let u = Simt.Barrier_unit.create ~n_barriers:1 ~warp_size:4 in
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Simt.Barrier_unit.join u 5 0);
  invalid (fun () -> Simt.Barrier_unit.join u 0 9);
  (* blocking a non-participant is a simulator-usage bug *)
  invalid (fun () -> Simt.Barrier_unit.block u 0 0 ~threshold:None)

(* ---- Metrics ---- *)

let test_metrics () =
  let m = Simt.Metrics.create ~warp_size:32 in
  check (Alcotest.float 1e-9) "empty efficiency" 0.0 (Simt.Metrics.simt_efficiency m);
  m.Simt.Metrics.issues <- 10;
  m.Simt.Metrics.active_sum <- 160;
  m.Simt.Metrics.cycles <- 20;
  check (Alcotest.float 1e-9) "efficiency" 0.5 (Simt.Metrics.simt_efficiency m);
  check (Alcotest.float 1e-9) "avg active" 16.0 (Simt.Metrics.avg_active m);
  check (Alcotest.float 1e-9) "ipc" 0.5 (Simt.Metrics.ipc m)

(* ---- Interp ---- *)

let small_config = { Simt.Config.default with Simt.Config.n_warps = 1 }

let run_src ?(config = small_config) ?(args = []) src =
  let compiled = Core.Compile.compile Core.Compile.baseline ~source:src in
  Simt.Interp.run config compiled.Core.Compile.decoded ~args ~init_memory:(fun _ -> ())

let out_cells (r : Simt.Interp.result) n = Simt.Memsys.dump r.Simt.Interp.memory ~base:0 ~len:n

let test_interp_tid_store () =
  let r = run_src "global out: int[64];\nkernel k() { out[tid()] = tid() * 2; }" in
  let cells = out_cells r 32 in
  Array.iteri
    (fun i v -> check_bool (Printf.sprintf "cell %d" i) true (v = T.I (i * 2)))
    cells;
  check_int "all finished" 32 r.Simt.Interp.metrics.Simt.Metrics.threads_finished

let test_interp_full_efficiency_when_uniform () =
  let r = run_src "global out: int[64];\nkernel k() { var s: int = 0; for i in 0 .. 10 { s = s + i; } out[tid()] = s; }" in
  check (Alcotest.float 0.001) "uniform kernel runs at 100%" 1.0
    (Simt.Metrics.simt_efficiency r.Simt.Interp.metrics)

let test_interp_divergence_reduces_efficiency () =
  let r =
    run_src
      {|
global out: int[64];
kernel k() {
  var s: int = 0;
  if (lane() % 2 == 0) {
    for i in 0 .. 20 { s = s + i; }
  } else {
    for i in 0 .. 20 { s = s - i; }
  }
  out[tid()] = s;
}
|}
  in
  let eff = Simt.Metrics.simt_efficiency r.Simt.Interp.metrics in
  check_bool "divergent kernel below 90%" true (eff < 0.9);
  check_bool "but above 40%" true (eff > 0.4)

let test_interp_args () =
  let r = run_src ~args:[ T.I 5; T.F 1.5 ]
      "global out: float[64];\nkernel k(n: int, x: float) { out[tid()] = float(n) * x; }"
  in
  check_bool "arg value" true ((out_cells r 1).(0) = T.F 7.5)

let test_interp_arity_error () =
  let compiled =
    Core.Compile.compile Core.Compile.baseline ~source:"kernel k(n: int) { let x = n; }"
  in
  match
    Simt.Interp.run small_config compiled.Core.Compile.decoded ~args:[] ~init_memory:(fun _ -> ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_interp_runtime_errors () =
  let expect_error src =
    match run_src src with
    | exception Simt.Interp.Runtime_error _ -> ()
    | _ -> Alcotest.failf "expected runtime error"
  in
  expect_error "global out: int[4];\nkernel k() { out[tid() + 100] = 1; }";
  expect_error "global out: int[64];\nkernel k() { out[tid()] = 1 / (tid() - tid()); }";
  expect_error "global out: int[64];\nkernel k() { out[tid()] = randint(0); }"

let test_interp_runaway () =
  let config = { small_config with Simt.Config.max_issues = 1000 } in
  let src =
    "global out: int[64];\nkernel k() { var i: int = 0; while (i < 1) { i = i - 1; } out[tid()] = i; }"
  in
  match run_src ~config src with
  | exception Simt.Interp.Runaway _ -> ()
  | _ -> Alcotest.fail "expected runaway protection to trigger"

let test_interp_determinism () =
  let src =
    {|
global out: float[64];
kernel k() {
  var acc: float = 0.0;
  for i in 0 .. 10 { acc = acc + rand(); }
  out[tid()] = acc;
}
|}
  in
  let a = run_src src and b = run_src src in
  check_bool "same seed, same results" true (out_cells a 32 = out_cells b 32);
  check_int "same issue count" a.Simt.Interp.metrics.Simt.Metrics.issues
    b.Simt.Interp.metrics.Simt.Metrics.issues;
  let other_seed = { small_config with Simt.Config.seed = 7 } in
  let c = run_src ~config:other_seed src in
  check_bool "different seed, different results" true (out_cells a 32 <> out_cells c 32)

let test_interp_policies_same_results () =
  let src =
    {|
global out: float[64];
kernel k() {
  var acc: float = 0.0;
  for i in 0 .. 8 {
    if (rand() < 0.5) { acc = acc + 1.0; } else { acc = acc - 1.0; }
  }
  out[tid()] = acc;
}
|}
  in
  let with_policy policy = run_src ~config:{ small_config with Simt.Config.policy } src in
  let a = with_policy Simt.Config.Most_threads in
  let b = with_policy Simt.Config.Lowest_pc in
  let c = with_policy Simt.Config.Round_robin in
  check_bool "most-threads = lowest-pc results" true (out_cells a 32 = out_cells b 32);
  check_bool "most-threads = round-robin results" true (out_cells a 32 = out_cells c 32)

let test_interp_rr_state_scoped () =
  (* Round_robin is the only policy allowed to touch the rotation cursor
     (rr_pc); regression guard for the bug where every policy updated it.
     The cursor is per-launch state, so the observable contract is:
     (a) a policy's full issue schedule is a function of that policy
     alone — running other policies before/after it, in any order within
     one process, must not perturb it — and (b) Round_robin genuinely
     rotates (its schedule differs from Lowest_pc's on a divergent
     workload), so (a) is not vacuous. *)
  let src =
    {|
global out: float[64];
kernel k() {
  var acc: float = 0.0;
  for i in 0 .. 6 {
    if (rand() < 0.5) { acc = acc + 1.0; } else { acc = acc - rand(); }
  }
  out[tid()] = acc;
}
|}
  in
  let compiled = Core.Compile.compile Core.Compile.baseline ~source:src in
  let trace policy =
    let events = ref [] in
    let tracer (e : Simt.Interp.issue_event) =
      events := (e.Simt.Interp.at_cycle, e.Simt.Interp.warp, e.Simt.Interp.pc, e.Simt.Interp.active) :: !events
    in
    ignore
      (Simt.Interp.run ~tracer
         { small_config with Simt.Config.policy }
         compiled.Core.Compile.decoded ~args:[] ~init_memory:(fun _ -> ()));
    List.rev !events
  in
  let lowest_first = trace Simt.Config.Lowest_pc in
  let round_robin = trace Simt.Config.Round_robin in
  let most_threads = trace Simt.Config.Most_threads in
  let lowest_again = trace Simt.Config.Lowest_pc in
  let most_again = trace Simt.Config.Most_threads in
  check_bool "lowest-pc schedule unperturbed by other policies" true
    (lowest_first = lowest_again);
  check_bool "most-threads schedule unperturbed by other policies" true
    (most_threads = most_again);
  check_bool "round-robin actually rotates" true (round_robin <> lowest_first)

let test_interp_no_spontaneous_merge () =
  (* Two sides of a divergent branch run the same uniform loop; without a
     barrier they must NOT merge (group identities stay apart), so
     efficiency stays near 50%. This pins down the Volta-faithful
     convergence model. *)
  let src =
    {|
global out: float[64];
kernel k() {
  var acc: float = float(lane());
  if (lane() % 2 == 0) {
    var i: int = 0;
    while (i < 32) { acc = acc + 1.0; i = i + 1; }
  } else {
    var j: int = 0;
    while (j < 32) { acc = acc + 1.0; j = j + 1; }
  }
  out[tid()] = acc;
}
|}
  in
  let r = run_src src in
  let eff = Simt.Metrics.simt_efficiency r.Simt.Interp.metrics in
  check_bool "diverged halves never exceed ~55%" true (eff < 0.55)

let test_interp_barrier_reconverges () =
  (* Hand-inserted convergence barrier: join before the divergent branch,
     wait at the join point; efficiency recovers. *)
  let p = Front.Lower.compile_source
      {|
global out: float[64];
kernel k() {
  var acc: float = float(lane());
  if (lane() % 2 == 0) { acc = acc + 1.0; } else { acc = acc - 1.0; }
  var i: int = 0;
  while (i < 32) { acc = acc + 1.0; i = i + 1; }
  out[tid()] = acc;
}
|}
  in
  (* compile twice: no sync vs baseline PDOM *)
  let run_program program =
    let decoded = Ir.Decoded.decode (Ir.Linear.linearize program) in
    Simt.Interp.run small_config decoded ~args:[] ~init_memory:(fun _ -> ())
  in
  let no_sync = run_program p in
  let p2 = Front.Lower.compile_source
      {|
global out: float[64];
kernel k() {
  var acc: float = float(lane());
  if (lane() % 2 == 0) { acc = acc + 1.0; } else { acc = acc - 1.0; }
  var i: int = 0;
  while (i < 32) { acc = acc + 1.0; i = i + 1; }
  out[tid()] = acc;
}
|}
  in
  let divergence = Analysis.Divergence.run p2 in
  ignore (Passes.Pdom_sync.run p2 divergence);
  let with_sync = run_program p2 in
  let eff_no = Simt.Metrics.simt_efficiency no_sync.Simt.Interp.metrics in
  let eff_yes = Simt.Metrics.simt_efficiency with_sync.Simt.Interp.metrics in
  check_bool "PDOM reconvergence recovers efficiency" true (eff_yes > eff_no +. 0.2);
  (* and results agree *)
  check_bool "results agree" true (out_cells no_sync 32 = out_cells with_sync 32)

let test_tracer_consistency () =
  (* The tracer sees exactly one event per issue, and the active-lane
     totals reconstruct the SIMT-efficiency numerator. *)
  let src =
    {|
global out: float[64];
kernel k() {
  var acc: float = 0.0;
  for i in 0 .. 6 {
    if (rand() < 0.5) { acc = acc + 1.0; }
  }
  out[tid()] = acc;
}
|}
  in
  let compiled = Core.Compile.compile Core.Compile.baseline ~source:src in
  let issues = ref 0 and active = ref 0 in
  let result =
    Simt.Interp.run small_config compiled.Core.Compile.decoded
      ~tracer:(fun e ->
        incr issues;
        active := !active + List.length e.Simt.Interp.active;
        (* lanes are ascending and within the warp *)
        let rec ascending = function
          | a :: (b :: _ as rest) -> a < b && ascending rest
          | [ _ ] | [] -> true
        in
        if not (ascending e.Simt.Interp.active) then Alcotest.fail "lanes not ascending";
        if e.Simt.Interp.warp <> 0 then Alcotest.fail "single-warp launch saw another warp")
      ~args:[] ~init_memory:(fun _ -> ())
  in
  check_int "one event per issue" result.Simt.Interp.metrics.Simt.Metrics.issues !issues;
  check_int "active sum matches" result.Simt.Interp.metrics.Simt.Metrics.active_sum !active

let prop_memsys_cost_formula =
  (* Without a cache the coalescing cost is exactly
     base + (lines - 1) * per_transaction. *)
  QCheck2.Test.make ~name:"memsys: cost matches the coalescing formula" ~count:200
    QCheck2.Gen.(list_size (int_range 1 32) (int_range 0 4095))
    (fun addrs ->
      let m = Simt.Memsys.create mem_config ~size:4096 in
      let lines =
        List.sort_uniq compare
          (List.map (fun a -> a / mem_config.Simt.Config.line_words) addrs)
      in
      Simt.Memsys.access_cost m ~addrs
      = mem_config.Simt.Config.base_latency
        + ((List.length lines - 1) * mem_config.Simt.Config.per_transaction))

let prop_barrier_unit_invariants =
  (* Random operation sequences keep the unit's invariants: waiting is a
     subset of participants, and a fire releases exactly the waiters. *)
  let op_gen =
    QCheck2.Gen.(
      pair (int_range 0 2) (pair (int_range 0 1) (int_range 0 7)) (* op, barrier, lane *))
  in
  QCheck2.Test.make ~name:"barrier unit: waiting ⊆ participants under any op sequence"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) op_gen)
    (fun ops ->
      let u = Simt.Barrier_unit.create ~n_barriers:2 ~warp_size:8 in
      List.for_all
        (fun (op, (b, lane)) ->
          (match op with
          | 0 -> Simt.Barrier_unit.join u b lane
          | 1 -> Simt.Barrier_unit.cancel u b lane
          | _ ->
            if
              Simt.Barrier_unit.is_participant u b lane
              && not (Support.Mask.mem lane (Simt.Barrier_unit.waiting u b))
            then Simt.Barrier_unit.block u b lane ~threshold:None);
          let w = Simt.Barrier_unit.waiting u b
          and p = Simt.Barrier_unit.participants u b in
          let subset_ok = Support.Mask.subset w p in
          let fire_ok =
            match Simt.Barrier_unit.fired u b with
            | None -> true
            | Some released ->
              Support.Mask.equal released w
              && Support.Mask.is_empty
                   (Support.Mask.inter released (Simt.Barrier_unit.participants u b))
          in
          subset_ok && fire_ok)
        ops)

let test_config_validation () =
  let invalid c = match Simt.Config.validate c with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "expected config rejection"
  in
  invalid { Simt.Config.default with Simt.Config.warp_size = 0 };
  invalid { Simt.Config.default with Simt.Config.warp_size = 1000 };
  invalid { Simt.Config.default with Simt.Config.n_warps = 0 };
  invalid { Simt.Config.default with Simt.Config.max_issues = 0 };
  invalid
    {
      Simt.Config.default with
      Simt.Config.latencies = { Simt.Config.default.Simt.Config.latencies with Simt.Config.alu = 0 };
    };
  invalid
    {
      Simt.Config.default with
      Simt.Config.memory =
        {
          Simt.Config.default.Simt.Config.memory with
          Simt.Config.cache = Some { Simt.Config.sets = 0; ways = 1; hit_latency = 1 };
        };
    };
  Simt.Config.validate Simt.Config.default

let tests =
  [
    ( "simt.valops",
      [
        Alcotest.test_case "int ops" `Quick test_valops_int;
        Alcotest.test_case "float ops" `Quick test_valops_float;
        Alcotest.test_case "truthy" `Quick test_valops_truthy;
      ] );
    ( "simt.memsys",
      [
        Alcotest.test_case "read/write" `Quick test_memsys_rw;
        Alcotest.test_case "coalescing" `Quick test_memsys_coalescing;
        Alcotest.test_case "cache" `Quick test_memsys_cache;
      ] );
    ( "simt.barrier_unit",
      [
        Alcotest.test_case "fire when all wait" `Quick test_barrier_basic_fire;
        Alcotest.test_case "cancel completes" `Quick test_barrier_cancel_completes;
        Alcotest.test_case "threshold (soft barrier)" `Quick test_barrier_threshold;
        Alcotest.test_case "withdraw lane" `Quick test_barrier_withdraw;
        Alcotest.test_case "withdrawals complete a pending threshold wait" `Quick
          test_barrier_threshold_withdraw_completes;
        Alcotest.test_case "cancel during pending threshold wait" `Quick
          test_barrier_cancel_during_threshold;
        Alcotest.test_case "force release (yield primitive)" `Quick test_barrier_force_release;
        Alcotest.test_case "errors" `Quick test_barrier_errors;
      ] );
    ("simt.metrics", [ Alcotest.test_case "derivations" `Quick test_metrics ]);
    ( "simt.interp",
      [
        Alcotest.test_case "tid store" `Quick test_interp_tid_store;
        Alcotest.test_case "uniform 100% efficiency" `Quick test_interp_full_efficiency_when_uniform;
        Alcotest.test_case "divergence lowers efficiency" `Quick
          test_interp_divergence_reduces_efficiency;
        Alcotest.test_case "kernel args" `Quick test_interp_args;
        Alcotest.test_case "arity error" `Quick test_interp_arity_error;
        Alcotest.test_case "runtime errors" `Quick test_interp_runtime_errors;
        Alcotest.test_case "runaway protection" `Quick test_interp_runaway;
        Alcotest.test_case "determinism" `Quick test_interp_determinism;
        Alcotest.test_case "policy-invariant results" `Quick test_interp_policies_same_results;
        Alcotest.test_case "rr cursor scoped to round-robin" `Quick test_interp_rr_state_scoped;
        Alcotest.test_case "no spontaneous merge" `Quick test_interp_no_spontaneous_merge;
        Alcotest.test_case "barriers reconverge" `Quick test_interp_barrier_reconverges;
        Alcotest.test_case "tracer consistency" `Quick test_tracer_consistency;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        QCheck_alcotest.to_alcotest prop_memsys_cost_formula;
        QCheck_alcotest.to_alcotest prop_barrier_unit_invariants;
      ] );
  ]
