(* Structured CLI failure handling (Core.Cli): one expectation per
   failure mode — the exception each tool can hit, the outcome it
   classifies to, its stable exit code, and its one-line diagnostic. *)

module Cli = Core.Cli

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let pos = { Front.Ast.line = 3; col = 7 }

let test_exit_codes () =
  let expect code outcome = check_int (Cli.describe outcome) code (Cli.exit_code outcome) in
  expect 0 Cli.Ok_exit;
  expect 1 Cli.Findings;
  expect 2 (Cli.Usage "bad flag");
  expect 3 (Cli.Io_error "gone");
  expect 4 (Cli.Syntax_error "3:7: unexpected token");
  expect 5 (Cli.Compile_error "no kernel declared");
  expect 6 (Cli.Deadlock "all live threads blocked");
  expect 7 (Cli.Runtime_failure "division by zero");
  expect 8 (Cli.Baseline_mismatch "digest a, baseline b");
  expect 9 (Cli.Deadline_exceeded "issue budget 50 exhausted")

let test_classify_per_failure_mode () =
  let expect name exn outcome = check_bool name true (Cli.classify exn = Some outcome) in
  expect "missing file -> i/o (3)" (Sys_error "nope.simt: No such file or directory")
    (Cli.Io_error "nope.simt: No such file or directory");
  expect "lex error -> syntax (4)"
    (Front.Lexer.Lex_error (pos, "stray '@'"))
    (Cli.Syntax_error "3:7: stray '@'");
  expect "parse error -> syntax (4)"
    (Front.Parser.Parse_error (pos, "expected ')'"))
    (Cli.Syntax_error "3:7: expected ')'");
  expect "lowering error -> compile (5)"
    (Front.Lower.Lower_error (pos, "unknown variable x"))
    (Cli.Compile_error "3:7: unknown variable x");
  expect "bad kernel args -> usage (2)"
    (Invalid_argument "Interp.run: kernel k expects 1 args, got 0")
    (Cli.Usage "Interp.run: kernel k expects 1 args, got 0");
  expect "deadlock -> deadlock (6)" (Simt.Interp.Deadlock "stuck") (Cli.Deadlock "stuck");
  expect "runtime error -> runtime (7)"
    (Simt.Interp.Runtime_error "out of bounds")
    (Cli.Runtime_failure "out of bounds");
  expect "runaway -> runtime (7)" (Simt.Interp.Runaway "issue budget")
    (Cli.Runtime_failure "runaway: issue budget");
  expect "deadline -> deadline (9)"
    (Simt.Interp.Deadline_exceeded "fuel 50 exhausted")
    (Cli.Deadline_exceeded "fuel 50 exhausted");
  expect "tool-raised outcome passes through" (Cli.Error (Cli.Baseline_mismatch "x"))
    (Cli.Baseline_mismatch "x");
  (* Failure diagnostics are truncated to their first line. *)
  expect "failure -> compile (5), one line"
    (Failure "bad fault trace\nline 2\nline 3")
    (Cli.Compile_error "bad fault trace [...]");
  check_bool "unrecognized exceptions are not swallowed" true (Cli.classify Exit = None)

let test_describe_one_line () =
  (* Everything is a one-liner except the deadlock report, whose
     waits-for cycle is the point of the diagnostic. *)
  List.iter
    (fun outcome ->
      check_bool (Cli.describe outcome) false (String.contains (Cli.describe outcome) '\n'))
    [
      Cli.Ok_exit;
      Cli.Findings;
      Cli.Usage "u";
      Cli.Io_error "i";
      Cli.Syntax_error "s";
      Cli.Compile_error "c";
      Cli.Runtime_failure "r";
      Cli.Baseline_mismatch "b";
      Cli.Deadline_exceeded "d";
    ];
  check_bool "deadlock keeps its report lines" true
    (String.contains (Cli.describe (Cli.Deadlock "cycle:\nb0 -> b1")) '\n')

let test_handle () =
  check_int "passes through the inner exit code" 0 (Cli.handle (fun () -> 0));
  check_int "maps a recognized exception" 6
    (Cli.handle (fun () -> raise (Simt.Interp.Deadlock "stuck")));
  check_int "maps a tool-raised outcome" 8
    (Cli.handle (fun () -> raise (Cli.Error (Cli.Baseline_mismatch "x"))));
  match Cli.handle (fun () -> raise Exit) with
  | exception Exit -> ()
  | code -> Alcotest.failf "tool bugs must crash loudly, got exit %d" code

(* ---- the srcc --fix exit-code contract, end to end ----

   A corpus deadlock repro compiled speculatively without deconfliction
   is the canonical flagged program: --fix must repair it (exit 0),
   --fix-dry-run must plan without failing the build (exit 0), and a
   zero-edit budget must keep the lint hard error (exit 5,
   Compile_error) in both modes — no new exit codes. *)

let srcc args =
  Sys.command (Printf.sprintf "../bin/srcc.exe %s > /dev/null 2>&1" args)

let repro = "corpus/srfuzz_42_114_deadlock.simt --mode specrecon --no-deconflict"

let test_srcc_fix_exit_codes () =
  check_int "flagged placement without --fix keeps the lint error (5)"
    (Cli.exit_code (Cli.Compile_error "")) (srcc repro);
  check_int "--fix repairs it (0)" (Cli.exit_code Cli.Ok_exit) (srcc (repro ^ " --fix"));
  check_int "--fix-dry-run plans without failing the build (0)"
    (Cli.exit_code Cli.Ok_exit)
    (srcc (repro ^ " --fix-dry-run"));
  check_int "--fix with a zero budget is unrepairable (5)"
    (Cli.exit_code (Cli.Compile_error ""))
    (srcc (repro ^ " --fix --fix-budget 0"));
  check_int "--fix-dry-run with a zero budget reports it too (5)"
    (Cli.exit_code (Cli.Compile_error ""))
    (srcc (repro ^ " --fix-dry-run --fix-budget 0"));
  check_int "--fix on a clean program is a no-op (0)" (Cli.exit_code Cli.Ok_exit)
    (srcc "../examples/kernels/loop_merge.simt --mode specrecon --fix")

let tests =
  [
    ( "core.cli",
      [
        Alcotest.test_case "exit codes stable" `Quick test_exit_codes;
        Alcotest.test_case "classification per failure mode" `Quick
          test_classify_per_failure_mode;
        Alcotest.test_case "diagnostics are one line (except deadlock)" `Quick
          test_describe_one_line;
        Alcotest.test_case "handle" `Quick test_handle;
        Alcotest.test_case "srcc --fix exit-code contract" `Quick test_srcc_fix_exit_codes;
      ] );
  ]
