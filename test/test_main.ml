(* Test entry point: every suite from every layer of the stack. *)

let () =
  Alcotest.run "specrecon"
    (Test_support.tests @ Test_ir.tests @ Test_decoded.tests @ Test_front.tests @ Test_analysis.tests
   @ Test_passes.tests @ Test_simt.tests @ Test_opt.tests @ Test_workloads.tests
   @ Test_integration.tests @ Test_differential.tests @ Test_fuzz.tests
   @ Test_determinism.tests @ Test_lint.tests @ Test_race.tests @ Test_repair.tests
   @ Test_cli.tests @ Test_serve.tests)
