(* Experiment outputs must not depend on the worker-domain count: the
   corpus funnel fans compilation and simulation out through
   {!Support.Domain_pool}, and the determinism contract (§4.2) extends
   to the rendered report — byte-identical whether one domain or four
   do the work. *)

let render_funnel domains =
  Test_support.with_domains domains (fun () ->
      Format.asprintf "%a" Core.Experiments.pp_funnel
        (Core.Experiments.corpus_funnel ~seed:7 ~count:12 ()))

let test_funnel_domain_independence () =
  Alcotest.(check string) "byte-identical under 1 vs 4 domains" (render_funnel 1)
    (render_funnel 4)

let tests =
  [
    ( "determinism.domains",
      [
        Alcotest.test_case "corpus funnel under 1 vs 4 domains" `Slow
          test_funnel_domain_independence;
      ] );
  ]
