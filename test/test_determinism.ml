(* Experiment outputs must not depend on the worker-domain count: the
   corpus funnel fans compilation and simulation out through
   {!Support.Domain_pool}, and the determinism contract (§4.2) extends
   to the rendered report — byte-identical whether one domain or four
   do the work. *)

let render_funnel domains =
  Test_support.with_domains domains (fun () ->
      Format.asprintf "%a" Core.Experiments.pp_funnel
        (Core.Experiments.corpus_funnel ~seed:7 ~count:12 ()))

let test_funnel_domain_independence () =
  Alcotest.(check string) "byte-identical under 1 vs 4 domains" (render_funnel 1)
    (render_funnel 4)

(* The same contract for the srserved engine: its batch phases (parallel
   precompile, sequential cache commit, parallel launch) must answer a
   mixed trace — repeated kernels, distinct kernels, failures, stats,
   malformed lines — with a byte-identical response stream whatever
   SPECRECON_DOMAINS says. *)
let serve_trace =
  let module P = Serve.Protocol in
  let registry =
    List.concat_map
      (fun (spec : Workloads.Spec.t) ->
        let req id =
          P.print_command
            (P.Run
               (P.make_request ~id ~warps:1 ?coarsen:spec.Workloads.Spec.coarsen
                  ~args:spec.Workloads.Spec.args ~source:spec.Workloads.Spec.source ()))
        in
        [ req 0; req 1 ])
      Workloads.Registry.all
  in
  let fuzzed =
    List.init 6 (fun i ->
        let case = Fuzz.Gen.generate ~seed:1303 i in
        P.print_command
          (P.Run
             (P.make_request ~id:(100 + i) ~init:"data"
                ~source:(Front.Pretty.to_string case.Fuzz.Gen.ast)
                ())))
  in
  let failing =
    [
      P.print_command (P.Run (P.make_request ~id:200 ~source:"kernel k( {" ()));
      "not a protocol line";
    ]
  in
  registry @ fuzzed @ failing @ [ P.print_command (P.Stats 300) ]

let render_serve domains =
  Test_support.with_domains domains (fun () ->
      let server = Serve.Server.create ~cache_capacity:32 () in
      String.concat "\n" (Serve.Server.submit_lines server serve_trace))

let test_serve_domain_independence () =
  Alcotest.(check string) "byte-identical response stream under 1 vs 4 domains"
    (render_serve 1) (render_serve 4)

(* And once more over the wire: the same trace through a
   Serve.Transport socket server must come back byte-identical whatever
   SPECRECON_DOMAINS says — the select-loop transport adds no
   nondeterminism of its own on top of the engine's ordered batch
   phases. The server runs in a spawned domain rather than a forked
   child: OCaml 5 forbids Unix.fork in any process that ever created a
   domain, and the sibling tests here force 4-domain pools (the forked
   lifecycle — exit 0 on drain, kill -9 restarts — is covered by
   srserved --smoke and srfuzz --serve-chaos, whose parents never touch
   Domain_pool before forking). *)
let render_socket domains =
  Test_support.with_domains domains (fun () ->
      let dir = Filename.temp_file "srsockdet" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      Fun.protect ~finally:(fun () ->
          Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
          Unix.rmdir dir)
      @@ fun () ->
      let socket_path = Filename.concat dir "det.sock" in
      let server_domain =
        Domain.spawn (fun () ->
            Serve.Transport.serve (Serve.Server.create ~cache_capacity:32 ()) ~socket_path ())
      in
      let stream =
        let c = Serve.Client.connect socket_path in
        let responses = Serve.Client.round_trip c serve_trace in
        let bye =
          Serve.Client.round_trip c [ Serve.Protocol.print_command Serve.Protocol.Shutdown ]
        in
        Serve.Client.close c;
        String.concat "\n" (responses @ bye)
      in
      (* shutdown drains the whole service, so serve returns. *)
      Domain.join server_domain;
      stream)

let test_socket_domain_independence () =
  let one = render_socket 1 in
  Alcotest.(check string) "byte-identical socket stream under 1 vs 4 domains" one
    (render_socket 4);
  (* The transport also matches the in-process engine answer-for-answer
     (plus the trailing bye the socket's shutdown earns). *)
  Alcotest.(check string) "socket stream matches the stdio engine"
    (render_serve 1 ^ "\nbye") one

let tests =
  [
    ( "determinism.domains",
      [
        Alcotest.test_case "corpus funnel under 1 vs 4 domains" `Slow
          test_funnel_domain_independence;
        Alcotest.test_case "srserved response stream under 1 vs 4 domains" `Slow
          test_serve_domain_independence;
        Alcotest.test_case "socket transport stream under 1 vs 4 domains" `Slow
          test_socket_domain_independence;
      ] );
  ]
