(* Tests for the MiniSIMT front end: lexer, parser, lowering (type
   checking + control-flow expansion), and thread coarsening. *)

module A = Front.Ast
module P = Front.Parser
module Low = Front.Lower

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let parses src = ignore (P.parse_string src)

let parse_fails src =
  match P.parse_string src with
  | exception P.Parse_error _ -> ()
  | exception Front.Lexer.Lex_error _ -> ()
  | _ -> Alcotest.failf "expected parse failure for: %s" src

let lowers src = ignore (Low.compile_source src)

let lower_fails ?expect src =
  match Low.compile_source src with
  | exception Low.Lower_error (_, msg) -> (
    match expect with
    | None -> ()
    | Some fragment ->
      let has sub =
        let n = String.length msg and m = String.length sub in
        let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
        go 0
      in
      if not (has fragment) then
        Alcotest.failf "error %S does not mention %S" msg fragment)
  | _ -> Alcotest.failf "expected lowering failure for: %s" src

(* ---- lexer ---- *)

let test_lexer_basics () =
  parses "kernel k() { }";
  parses "kernel k() { // comment\n }";
  parses "kernel k() { /* multi\n line */ }";
  parses "kernel k() { var x: float = 1.5e3; x = 2.0e-2; x = 3.; }";
  parse_fails "kernel k() { var x: int = @; }";
  parse_fails "kernel k() { /* unterminated"

(* ---- parser ---- *)

let test_parser_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3): check through evaluation later;
     here just verify the AST nests multiplication deeper. *)
  let prog = P.parse_string "kernel k() { let x = 1 + 2 * 3; }" in
  match prog.A.funcs with
  | [ { A.body = [ { A.sdesc = A.Decl { init; _ }; _ } ]; _ } ] -> (
    match init.A.desc with
    | A.Binary (A.Badd, { A.desc = A.Int_lit 1; _ }, { A.desc = A.Binary (A.Bmul, _, _); _ }) ->
      ()
    | _ -> Alcotest.fail "wrong precedence shape")
  | _ -> Alcotest.fail "unexpected program shape"

let test_parser_statements () =
  parses
    {|
global g: float[16];
func f(a: int, b: float) -> float { return b; }
kernel k(n: int) {
  var x: int = 0;
  let y = 2.0;
  if (x < n) { x = n; } else if (x == 0) { x = 1; } else { x = 2; }
  while (x > 0) { x = x - 1; if (x == 3) { break; } continue; }
  for i in 0 .. n { g[i] = y; }
  L1:
  predict L1;
  predict L1 threshold 4;
  predict func f;
  let z = f(x, y) + g[0];
  g[1] = z;
  return;
}
|};
  parse_fails "kernel k() { if x { } }" (* missing parens *);
  parse_fails "kernel k() { for i in 0 { } }" (* missing .. *);
  parse_fails "global g: float[]; kernel k() { }";
  parse_fails "kernel k() { predict; }"

let test_parser_label_vs_assign () =
  (* IDENT ':' is a label, IDENT '=' an assignment, IDENT '[' an indexed
     store or expression statement. *)
  let prog =
    P.parse_string
      {|
global a: int[4];
kernel k() {
  var x: int = 0;
  lbl:
  x = 1;
  a[0] = 2;
  a[x];
}
|}
  in
  match prog.A.funcs with
  | [ { A.body; _ } ] ->
    let kinds =
      List.map
        (fun s ->
          match s.A.sdesc with
          | A.Decl _ -> "decl"
          | A.Label _ -> "label"
          | A.Assign _ -> "assign"
          | A.Index_assign _ -> "index-assign"
          | A.Expr_stmt _ -> "expr"
          | _ -> "other")
        body
    in
    check (Alcotest.list Alcotest.string) "statement kinds"
      [ "decl"; "label"; "assign"; "index-assign"; "expr" ]
      kinds
  | _ -> Alcotest.fail "unexpected shape"

(* ---- lowering ---- *)

let test_lower_accepts () =
  lowers "kernel k() { }";
  lowers "global s: int; kernel k() { s = 1; let x = s + 1; }";
  lowers "kernel k() { let b = 1 < 2 && 3 < 4 || !(5 < 6); }";
  lowers "func f() { } kernel k() { f(); }";
  lowers "kernel k() { var x: float = float(tid()); let i = int(x); }";
  (* shadowing in an inner scope is fine *)
  lowers "kernel k() { let x = 1; if (x == 1) { let x = 2.0; let y = x; } }"

let test_lower_type_errors () =
  lower_fails ~expect:"type mismatch" "kernel k() { let x = 1 + 2.0; }";
  lower_fails ~expect:"integer" "kernel k() { if (1.0) { } }";
  lower_fails ~expect:"integer" "kernel k() { while (0.5) { } }";
  lower_fails ~expect:"index" "global a: int[4]; kernel k() { let x = a[1.0]; }";
  lower_fails ~expect:"'%'" "kernel k() { let x = 1.0 % 2.0; }";
  lower_fails ~expect:"'!'" "kernel k() { let x = !1.5; }";
  lower_fails ~expect:"logical" "kernel k() { let x = 1.0 && 1; }";
  lower_fails ~expect:"declared" "kernel k() { var x: int = 1.0; }";
  lower_fails ~expect:"assigning" "kernel k() { var x: int = 1; x = 2.0; }"

let test_lower_name_errors () =
  lower_fails ~expect:"unknown variable" "kernel k() { let x = nope; }";
  lower_fails ~expect:"unknown function" "kernel k() { nope(); }";
  lower_fails ~expect:"unknown array" "kernel k() { nope[0] = 1; }";
  lower_fails ~expect:"immutable" "kernel k() { let x = 1; x = 2; }";
  lower_fails ~expect:"redeclaration" "kernel k() { let x = 1; let x = 2; }";
  lower_fails ~expect:"array" "global a: int[4]; kernel k() { a = 1; }";
  lower_fails ~expect:"scalar" "global s: int; kernel k() { s[0] = 1; }";
  lower_fails ~expect:"duplicate label" "kernel k() { L: L: }";
  lower_fails ~expect:"shadows" "func tid() { } kernel k() { }"

let test_lower_structure_errors () =
  lower_fails ~expect:"break" "kernel k() { break; }";
  lower_fails ~expect:"continue" "kernel k() { continue; }";
  lower_fails ~expect:"kernels cannot return" "kernel k() { return 1; }";
  lower_fails ~expect:"no kernel" "func f() { }";
  (* multiple kernels are legal: the first declared is the entry, the
     rest stay launchable by name *)
  (let p = Low.compile_source "kernel a() { } kernel b() { }" in
   Alcotest.(check string) "first kernel is the entry" "a" p.Ir.Types.kernel;
   Alcotest.(check (list string)) "all kernels launchable" [ "a"; "b" ] p.Ir.Types.kernels);
  lower_fails ~expect:"expects 1 argument" "func f(x: int) { } kernel k() { f(); }";
  lower_fails ~expect:"argument" "func f(x: int) { } kernel k() { f(1.0); }";
  lower_fails ~expect:"no value" "func f() { } kernel k() { let x = f(); }";
  lower_fails ~expect:"return a value" "func f() -> int { return; } kernel k() { f(); }"

let test_lower_dead_code () =
  (* Statements after break/continue/return are dropped, not crashed on. *)
  lowers "kernel k() { while (1 < 2) { break; let dead = 1; } }";
  lowers "kernel k() { return; let dead = 1; }"

let test_lower_verified () =
  (* Every successfully lowered program must pass the verifier (lower
     calls it; double-check on a structurally rich program). *)
  let p =
    Low.compile_source
      {|
global out: float[64];
func helper(x: float) -> float { return x * 2.0; }
kernel k(n: int) {
  var acc: float = 0.0;
  for i in 0 .. n {
    if (randint(2) == 0 && i < 8) {
      acc = acc + helper(acc);
    } else {
      acc = acc - 0.5;
    }
  }
  out[tid()] = acc;
}
|}
  in
  check_int "no verifier errors" 0 (List.length (Ir.Verifier.check_program p))

(* ---- semantics through the simulator ---- *)

let run_kernel ?(warps = 1) src args =
  let compiled = Core.Compile.compile Core.Compile.baseline ~source:src in
  let config = { Simt.Config.default with Simt.Config.n_warps = warps } in
  Simt.Interp.run config compiled.Core.Compile.decoded ~args ~init_memory:(fun _ -> ())

let read_out (compiled_src : string) (result : Simt.Interp.result) n =
  ignore compiled_src;
  Array.to_list (Simt.Memsys.dump result.Simt.Interp.memory ~base:0 ~len:n)

let test_semantics_arith () =
  let src =
    {|
global out: int[32];
kernel k() {
  let a = 7 + 3 * 4 - 1;      // 18
  let b = (7 + 3) * 4 % 7;    // 40 % 7 = 5
  let c = max(min(a, b), 2);  // 5
  let d = 10 / 3;             // 3
  out[tid()] = a * 1000 + b * 100 + c * 10 + d;
}
|}
  in
  let r = run_kernel src [] in
  match read_out src r 1 with
  | [ Ir.Types.I v ] -> check_int "arith result" 18553 v
  | _ -> Alcotest.fail "expected int output"

let test_semantics_short_circuit () =
  (* The right-hand side must not execute when short-circuited: a
     division by zero on the rhs would otherwise trap. *)
  let src =
    {|
global out: int[32];
kernel k() {
  let zero = 0;
  var x: int = 0;
  if (zero != 0 && 1 / zero > 0) { x = 1; }
  if (zero == 0 || 1 / zero > 0) { x = x + 2; }
  out[tid()] = x;
}
|}
  in
  let r = run_kernel src [] in
  match read_out src r 1 with
  | [ Ir.Types.I 2 ] -> ()
  | _ -> Alcotest.fail "short-circuit evaluated the wrong branch"

let test_semantics_loops () =
  let src =
    {|
global out: int[32];
kernel k() {
  var sum: int = 0;
  for i in 0 .. 10 { sum = sum + i; }            // 45
  var j: int = 0;
  while (j < 5) { j = j + 1; if (j == 3) { continue; } sum = sum + 100; } // +400
  for i in 0 .. 10 { if (i == 2) { break; } sum = sum + 1000; }           // +2000
  out[tid()] = sum;
}
|}
  in
  let r = run_kernel src [] in
  match read_out src r 1 with
  | [ Ir.Types.I v ] -> check_int "loop result" 2445 v
  | _ -> Alcotest.fail "expected int output"

let test_semantics_for_bound_frozen () =
  (* The upper bound of a for loop is evaluated once. *)
  let src =
    {|
global out: int[32];
kernel k() {
  var n: int = 3;
  var count: int = 0;
  for i in 0 .. n { n = 100; count = count + 1; }
  out[tid()] = count;
}
|}
  in
  let r = run_kernel src [] in
  match read_out src r 1 with
  | [ Ir.Types.I 3 ] -> ()
  | _ -> Alcotest.fail "for bound should be evaluated once"

let test_semantics_functions () =
  let src =
    {|
global out: int[32];
func fact(n: int) -> int {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
kernel k() { out[tid()] = fact(5); }
|}
  in
  let r = run_kernel src [] in
  match read_out src r 1 with
  | [ Ir.Types.I 120 ] -> ()
  | _ -> Alcotest.fail "recursive factorial failed"

(* ---- coarsening ---- *)

let test_coarsen_semantics () =
  (* A coarsened kernel over N threads must write the same cells as the
     original over N*factor threads (deterministic kernel: no rand). *)
  let src =
    {|
global out: int[256];
kernel k() {
  let work = tid() * 3 + nthreads();
  out[tid()] = work;
}
|}
  in
  let factor = 4 in
  let original =
    let c = Core.Compile.compile Core.Compile.baseline ~source:src in
    let config = { Simt.Config.default with Simt.Config.n_warps = factor } in
    Simt.Interp.run config c.Core.Compile.decoded ~args:[] ~init_memory:(fun _ -> ())
  in
  let coarsened =
    let options = { Core.Compile.baseline with Core.Compile.coarsen = Some factor } in
    let c = Core.Compile.compile options ~source:src in
    let config = { Simt.Config.default with Simt.Config.n_warps = 1 } in
    Simt.Interp.run config c.Core.Compile.decoded ~args:[] ~init_memory:(fun _ -> ())
  in
  let dump (r : Simt.Interp.result) = Simt.Memsys.dump r.Simt.Interp.memory ~base:0 ~len:128 in
  check_bool "coarsened result matches wide launch" true (dump original = dump coarsened)

let test_coarsen_hoists_predict () =
  let src =
    {|
global out: float[256];
kernel k() {
  predict L1;
  var x: float = 0.0;
  while (x < float(randint(8))) {
    L1:
    x = x + 1.0;
  }
  out[tid()] = x;
}
|}
  in
  let ast = Front.Coarsen.apply (P.parse_string src) ~factor:2 in
  match ast.A.funcs with
  | [ { A.body = first :: _; _ } ] -> (
    match first.A.sdesc with
    | A.Predict _ -> ()
    | _ -> Alcotest.fail "predict was not hoisted above the task loop")
  | _ -> Alcotest.fail "unexpected shape"

let test_coarsen_errors () =
  let reject src =
    match Front.Coarsen.apply (P.parse_string src) ~factor:2 with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "expected coarsening to fail: %s" src
  in
  reject "func f() -> int { return tid(); } kernel k() { let x = f(); }";
  reject "func f() { }";
  (match Front.Coarsen.apply (P.parse_string "kernel k() { }") ~factor:0 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "factor 0 accepted")

let tests =
  [
    ("front.lexer", [ Alcotest.test_case "basics" `Quick test_lexer_basics ]);
    ( "front.parser",
      [
        Alcotest.test_case "precedence" `Quick test_parser_precedence;
        Alcotest.test_case "statements" `Quick test_parser_statements;
        Alcotest.test_case "label vs assign" `Quick test_parser_label_vs_assign;
      ] );
    ( "front.lower",
      [
        Alcotest.test_case "accepts valid" `Quick test_lower_accepts;
        Alcotest.test_case "type errors" `Quick test_lower_type_errors;
        Alcotest.test_case "name errors" `Quick test_lower_name_errors;
        Alcotest.test_case "structure errors" `Quick test_lower_structure_errors;
        Alcotest.test_case "dead code dropped" `Quick test_lower_dead_code;
        Alcotest.test_case "verified output" `Quick test_lower_verified;
      ] );
    ( "front.semantics",
      [
        Alcotest.test_case "arithmetic" `Quick test_semantics_arith;
        Alcotest.test_case "short-circuit" `Quick test_semantics_short_circuit;
        Alcotest.test_case "loops" `Quick test_semantics_loops;
        Alcotest.test_case "for bound frozen" `Quick test_semantics_for_bound_frozen;
        Alcotest.test_case "recursive function" `Quick test_semantics_functions;
      ] );
    ( "front.coarsen",
      [
        Alcotest.test_case "semantics preserved" `Quick test_coarsen_semantics;
        Alcotest.test_case "predict hoisted" `Quick test_coarsen_hoists_predict;
        Alcotest.test_case "errors" `Quick test_coarsen_errors;
      ] );
  ]
