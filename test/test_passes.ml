(* Tests for the synchronization passes: baseline PDOM insertion, the
   Speculative Reconvergence algorithm (checked against Figure 4(d)),
   static/dynamic deconfliction, the interprocedural variant, automatic
   detection, and the soft-barrier threshold plumbing. *)

module T = Ir.Types
module ISet = Analysis.Sets.Int_set

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let compile = Front.Lower.compile_source

let kernel_func (p : T.program) = Hashtbl.find p.T.funcs p.T.kernel

let insts_of f bid = (T.block f bid).T.insts

let count_inst f pred =
  let n = ref 0 in
  T.iter_blocks f (fun b -> List.iter (fun i -> if pred i then incr n) b.T.insts);
  !n

let has_inst f pred = count_inst f pred > 0

(* ---- Pdom_sync ---- *)

let listing1_src =
  {|
global out: float[4096];
kernel k(n: int) {
  var acc: float = 0.0;
  predict L1;
  for i in 0 .. n {
    let r = randint(4);
    if (r == 0) {
      L1:
      var j: int = 0;
      while (j < 16) { acc = acc + sin(acc) * 0.25; j = j + 1; }
    }
    acc = acc + 0.001;
  }
  out[tid()] = acc;
}
|}

let test_pdom_inserts_at_ipdom () =
  let p = compile listing1_src in
  Hashtbl.iter (fun _ (f : T.func) -> f.T.hints <- []) p.T.funcs;
  let divergence = Analysis.Divergence.run p in
  let inserted = Passes.Pdom_sync.run p divergence in
  check_bool "at least one barrier" true (inserted <> []);
  let f = kernel_func p in
  let g = Analysis.Cfg.of_func f in
  let pdom = Analysis.Dom.Post.compute g in
  List.iter
    (fun (fname, branch_block, b) ->
      check Alcotest.string "in kernel" "k" fname;
      (* the Join sits in the branch block *)
      check_bool "join present" true
        (List.exists (fun i -> i = T.Join b) (insts_of f branch_block));
      (* the Wait sits at the branch's immediate post-dominator *)
      match Analysis.Dom.Post.ipdom pdom branch_block with
      | Some d ->
        check_bool "wait at ipdom" true (List.exists (fun i -> i = T.Wait b) (insts_of f d))
      | None -> Alcotest.fail "divergent branch without ipdom got a barrier")
    inserted

let test_pdom_skips_uniform () =
  let p = compile "kernel k(n: int) { if (n > 0) { let x = 1; } }" in
  let divergence = Analysis.Divergence.run p in
  check_int "no barriers for uniform branch" 0 (List.length (Passes.Pdom_sync.run p divergence))

(* ---- Specrecon (Figure 4(d)) ---- *)

let test_specrecon_figure4_shape () =
  let p = compile listing1_src in
  let applied = Passes.Specrecon.run p in
  check_int "one hint applied" 1 (List.length applied);
  let a = List.hd applied in
  let f = kernel_func p in
  let b0 = a.Passes.Specrecon.user_barrier in
  (* Join b0 at the region start (the Predict location) *)
  check_bool "join at region start" true
    (List.exists (fun i -> i = T.Join b0) (insts_of f a.Passes.Specrecon.region_start));
  (* Wait b0 at the predicted label, immediately followed by the Rejoin
     (threads wait on the barrier again next iteration: Figure 4(d)) *)
  (match insts_of f a.Passes.Specrecon.target_block with
  | T.Wait x :: T.Rejoin y :: _ when x = b0 && y = b0 -> ()
  | _ -> Alcotest.fail "expected [Wait b0; Rejoin b0] at the reconvergence point");
  check_bool "rejoined flag" true a.Passes.Specrecon.rejoined;
  (* Cancels on the region-exit frontier *)
  check_bool "cancel inserted" true (a.Passes.Specrecon.cancel_blocks <> []);
  List.iter
    (fun x ->
      check_bool "cancel at frontier block" true
        (List.exists (fun i -> i = T.Cancel b0) (insts_of f x)))
    a.Passes.Specrecon.cancel_blocks;
  (* The orthogonal region barrier joins with b0 and waits at the region
     post-dominator, after the frontier cancel *)
  match a.Passes.Specrecon.region_barrier with
  | None -> Alcotest.fail "expected a region barrier"
  | Some b1 ->
    check_bool "region join at start" true
      (List.exists (fun i -> i = T.Join b1) (insts_of f a.Passes.Specrecon.region_start));
    let wait_blocks = ref [] in
    T.iter_blocks f (fun b ->
        if List.exists (fun i -> i = T.Wait b1) b.T.insts then wait_blocks := b.T.id :: !wait_blocks);
    check_int "region wait exists once" 1 (List.length !wait_blocks);
    let exit_block = List.hd !wait_blocks in
    (* in that block, any Cancel precedes the region wait *)
    let rec check_order seen_wait = function
      | [] -> ()
      | T.Cancel _ :: rest ->
        check_bool "cancel before region wait" false seen_wait;
        check_order seen_wait rest
      | T.Wait x :: rest when x = b1 -> check_order true rest
      | _ :: rest -> check_order seen_wait rest
    in
    check_order false (insts_of f exit_block)

let test_specrecon_threshold () =
  let p = compile listing1_src in
  (* force a soft barrier *)
  Hashtbl.iter
    (fun _ (f : T.func) ->
      f.T.hints <-
        List.map (fun (h : T.predict_hint) -> { h with T.threshold = Some 6 }) f.T.hints)
    p.T.funcs;
  let applied = Passes.Specrecon.run p in
  let a = List.hd applied in
  let f = kernel_func p in
  match insts_of f a.Passes.Specrecon.target_block with
  | T.Wait_threshold (_, 6) :: _ -> ()
  | _ -> Alcotest.fail "expected a threshold wait at the reconvergence point"

let test_specrecon_unknown_label () =
  let p = compile "kernel k() { }" in
  let f = kernel_func p in
  f.T.hints <-
    [ { T.target = T.Label_target "ghost"; region_start = f.T.entry; threshold = None } ];
  match Passes.Specrecon.run p with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on unknown label"

(* ---- Deconfliction ---- *)

let compile_with_conflict () =
  let p = compile listing1_src in
  let applied = Passes.Specrecon.run p in
  let divergence = Analysis.Divergence.run p in
  let pdom = Passes.Pdom_sync.run p divergence in
  (p, List.hd applied, pdom)

let priority_of applied pdom fname b =
  let a = applied in
  if b = a.Passes.Specrecon.user_barrier then 3
  else if Some b = a.Passes.Specrecon.region_barrier then 2
  else if List.exists (fun (f, _, x) -> String.equal f fname && x = b) pdom then 1
  else 1

let test_deconflict_dynamic () =
  let p, a, pdom = compile_with_conflict () in
  let report =
    Passes.Deconflict.run p ~strategy:Passes.Deconflict.Dynamic ~priority:(priority_of a pdom)
  in
  check_bool "resolved something" true (report.Passes.Deconflict.resolutions <> []);
  check_int "nothing unresolved" 0 (List.length report.Passes.Deconflict.unresolved);
  let f = kernel_func p in
  List.iter
    (fun (r : Passes.Deconflict.resolution) ->
      check_int "user barrier kept" a.Passes.Specrecon.user_barrier r.Passes.Deconflict.kept;
      (* dynamic: a Cancel of the demoted barrier sits immediately before
         the kept barrier's wait (Figure 5(c)) *)
      let target_insts = insts_of f a.Passes.Specrecon.target_block in
      let rec find = function
        | T.Cancel x :: (T.Wait y | T.Wait_threshold (y, _)) :: _
          when x = r.Passes.Deconflict.demoted && y = r.Passes.Deconflict.kept -> true
        | _ :: rest -> find rest
        | [] -> false
      in
      check_bool "cancel before kept wait" true (find target_insts);
      (* nothing was deleted *)
      check_bool "demoted barrier still present" true
        (has_inst f (fun i -> T.barrier_of i = Some r.Passes.Deconflict.demoted)))
    report.Passes.Deconflict.resolutions

let test_deconflict_static () =
  let p, a, pdom = compile_with_conflict () in
  let report =
    Passes.Deconflict.run p ~strategy:Passes.Deconflict.Static ~priority:(priority_of a pdom)
  in
  check_bool "resolved something" true (report.Passes.Deconflict.resolutions <> []);
  let f = kernel_func p in
  List.iter
    (fun (r : Passes.Deconflict.resolution) ->
      check_bool "demoted barrier deleted" false
        (has_inst f (fun i -> T.barrier_of i = Some r.Passes.Deconflict.demoted)))
    report.Passes.Deconflict.resolutions

let test_deconflict_same_priority_unresolved () =
  let p, _, _ = compile_with_conflict () in
  let report =
    Passes.Deconflict.run p ~strategy:Passes.Deconflict.Dynamic ~priority:(fun _ _ -> 1)
  in
  check_bool "same priority left unresolved" true (report.Passes.Deconflict.unresolved <> []);
  check_int "no resolutions" 0 (List.length report.Passes.Deconflict.resolutions)

(* Behavioural check: the conflict really deadlocks without deconfliction
   and runs fine with it. *)
let run_program ?(config = { Simt.Config.default with Simt.Config.n_warps = 1 }) p args =
  let decoded = Ir.Decoded.decode (Ir.Linear.linearize p) in
  Simt.Interp.run config decoded ~args ~init_memory:(fun _ -> ())

let test_conflict_deadlocks_without_deconfliction () =
  let p, _, _ = compile_with_conflict () in
  (match run_program p [ T.I 24 ] with
  | exception Simt.Interp.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected the unresolved conflict to deadlock");
  (* same program, dynamic deconfliction: completes *)
  let p2, a2, pdom2 = compile_with_conflict () in
  ignore
    (Passes.Deconflict.run p2 ~strategy:Passes.Deconflict.Dynamic ~priority:(priority_of a2 pdom2));
  let r = run_program p2 [ T.I 24 ] in
  check_int "all threads finished" 32 r.Simt.Interp.metrics.Simt.Metrics.threads_finished

let test_yield_recovers_from_conflict () =
  (* Volta-style forward progress: with yield_on_stall the unresolved
     conflict costs performance instead of hanging. *)
  let p, _, _ = compile_with_conflict () in
  let config =
    { Simt.Config.default with Simt.Config.n_warps = 1; yield_on_stall = true }
  in
  let r = run_program ~config p [ T.I 24 ] in
  check_int "all threads finished" 32 r.Simt.Interp.metrics.Simt.Metrics.threads_finished;
  check_bool "yields happened" true (r.Simt.Interp.metrics.Simt.Metrics.yields > 0)

(* ---- Interproc ---- *)

let common_call_src =
  {|
global out: float[4096];
func foo(x: float) -> float {
  var acc: float = x;
  var i: int = 0;
  while (i < 8) { acc = acc + sin(acc) * 0.5; i = i + 1; }
  return acc;
}
kernel k(n: int) {
  var out_acc: float = 0.0;
  predict func foo;
  for i in 0 .. n {
    if ((lane() + i) % 2 == 0) {
      out_acc = out_acc + foo(1.0);
    } else {
      out_acc = out_acc + foo(2.0) * 0.5;
    }
  }
  out[tid()] = out_acc;
}
|}

let test_interproc_shape () =
  let p = compile common_call_src in
  let applied = Passes.Interproc.run p in
  check_int "one interproc hint" 1 (List.length applied);
  let a = List.hd applied in
  check Alcotest.string "callee" "foo" a.Passes.Interproc.callee;
  check_int "two call blocks" 2 (List.length a.Passes.Interproc.call_blocks);
  let b = a.Passes.Interproc.barrier in
  let k = kernel_func p in
  (* Join at the region start in the caller *)
  check_bool "join in caller" true
    (List.exists (fun i -> i = T.Join b) (insts_of k a.Passes.Interproc.region_start));
  (* Wait at the callee's entry *)
  let foo = Hashtbl.find p.T.funcs "foo" in
  (match insts_of foo foo.T.entry with
  | T.Wait x :: _ when x = b -> ()
  | _ -> Alcotest.fail "expected the wait at the callee entry");
  (* Rejoin after the calls (the loop revisits them) *)
  check_bool "rejoins placed" true (a.Passes.Interproc.rejoin_sites <> []);
  (* Cancels on loop exit *)
  check_bool "cancels placed" true (a.Passes.Interproc.cancel_blocks <> [])

let test_interproc_behaviour () =
  (* The interprocedural barrier halves the issues spent in foo. *)
  let baseline = Core.Compile.compile Core.Compile.baseline ~source:common_call_src in
  let spec = Core.Compile.compile Core.Compile.speculative ~source:common_call_src in
  let config = { Simt.Config.default with Simt.Config.n_warps = 1 } in
  let run (c : Core.Compile.compiled) =
    Simt.Interp.run config c.Core.Compile.decoded ~args:[ T.I 8 ] ~init_memory:(fun _ -> ())
  in
  let rb = run baseline and rs = run spec in
  check_bool "fewer issues with interproc reconvergence" true
    (rs.Simt.Interp.metrics.Simt.Metrics.issues < rb.Simt.Interp.metrics.Simt.Metrics.issues);
  check_bool "higher efficiency" true
    (Simt.Metrics.simt_efficiency rs.Simt.Interp.metrics
    > Simt.Metrics.simt_efficiency rb.Simt.Interp.metrics);
  (* results identical *)
  let dump (r : Simt.Interp.result) = Simt.Memsys.dump r.Simt.Interp.memory ~base:0 ~len:64 in
  check_bool "results identical" true (dump rb = dump rs)

let test_interproc_errors () =
  let reject src =
    let p = compile src in
    match Passes.Interproc.run p with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "expected interproc rejection"
  in
  (* recursive target *)
  reject
    {|
func r(x: int) -> int { if (x <= 0) { return 0; } return r(x - 1); }
kernel k() { predict func r; let a = r(3); }
|};
  (* never-called target *)
  reject
    {|
func f() { }
kernel k() { predict func f; }
|}

(* ---- Auto_detect ---- *)

let test_auto_detect_iteration_delay () =
  let p = compile listing1_src in
  Hashtbl.iter (fun _ (f : T.func) -> f.T.hints <- []) p.T.funcs;
  let candidates = Passes.Auto_detect.detect Passes.Auto_detect.default_params p in
  check_bool "found candidates" true (candidates <> []);
  check_bool "an iteration-delay candidate exists" true
    (List.exists
       (fun (c : Passes.Auto_detect.candidate) -> c.kind = Passes.Auto_detect.Iteration_delay)
       candidates)

let test_auto_detect_loop_merge () =
  let p =
    compile
      {|
global out: float[4096];
kernel k(n: int) {
  var acc: float = 0.0;
  for t in 0 .. n {
    let trip = randint(64);
    var j: int = 0;
    while (j < trip) {
      acc = acc + sin(acc) * 0.25;
      j = j + 1;
    }
  }
  out[tid()] = acc;
}
|}
  in
  let candidates = Passes.Auto_detect.detect Passes.Auto_detect.default_params p in
  match candidates with
  | (c : Passes.Auto_detect.candidate) :: _ ->
    check_bool "top candidate is loop merge" true (c.kind = Passes.Auto_detect.Loop_merge)
  | [] -> Alcotest.fail "expected a loop-merge candidate"

let test_auto_detect_skips_uniform_trip () =
  (* A constant-trip inner loop must not be mistaken for a divergent one,
     even when control-dependence marks its counter divergent. *)
  let p =
    compile
      {|
global out: float[4096];
kernel k(n: int) {
  var acc: float = 0.0;
  for t in 0 .. n {
    if (rand() < 0.5) {
      var j: int = 0;
      while (j < 6) { acc = acc + 1.0; j = j + 1; }
    }
  }
  out[tid()] = acc;
}
|}
  in
  let candidates = Passes.Auto_detect.detect Passes.Auto_detect.default_params p in
  check_bool "no loop-merge on the constant-trip loop" true
    (List.for_all
       (fun (c : Passes.Auto_detect.candidate) -> c.kind <> Passes.Auto_detect.Loop_merge)
       candidates)

let test_auto_detect_skips_annotated () =
  let p = compile listing1_src in
  (* user hints present: detector must leave the function alone *)
  check_int "no candidates for annotated function" 0
    (List.length (Passes.Auto_detect.detect Passes.Auto_detect.default_params p))

let test_auto_install_no_overlap () =
  let p = compile listing1_src in
  Hashtbl.iter (fun _ (f : T.func) -> f.T.hints <- []) p.T.funcs;
  let candidates = Passes.Auto_detect.detect Passes.Auto_detect.default_params p in
  Passes.Auto_detect.install p candidates;
  let f = kernel_func p in
  (* overlapping candidates over the same loop nest collapse to one hint *)
  check_int "single hint installed" 1 (List.length f.T.hints);
  (* installed hints compile *)
  ignore (Passes.Specrecon.run p);
  Ir.Verifier.check_program_exn p

(* ---- wrapper-function idiom (§4.4) ---- *)

let test_interproc_wrapper_idiom () =
  (* "The programmer ... must move calls to extern functions into a
     wrapper function body which acts as the required reconvergence
     point. The wrapper may also be used for functions that are called
     from within multiple independent regions." Here [shade] is called
     from two independent regions via the wrapper; predicting the wrapper
     reconverges both. *)
  let src =
    {|
global out: float[4096];
func shade(x: float) -> float {
  var acc: float = x;
  var i: int = 0;
  while (i < 12) { acc = acc + sin(acc) * 0.5; i = i + 1; }
  return acc;
}
func shade_wrapper(x: float) -> float { return shade(x); }
kernel k(n: int) {
  var total: float = 0.0;
  predict func shade_wrapper;
  for i in 0 .. n {
    if ((lane() + i) % 2 == 0) {
      total = total + shade_wrapper(1.0);
    } else {
      total = total + shade_wrapper(2.0) * 0.5;
    }
  }
  out[tid()] = total;
}
|}
  in
  let config = { Simt.Config.default with Simt.Config.n_warps = 1 } in
  let baseline = Core.Runner.run_source ~config Core.Compile.baseline ~source:src ~args:[ T.I 8 ] in
  let spec = Core.Runner.run_source ~config Core.Compile.speculative ~source:src ~args:[ T.I 8 ] in
  check_int "wrapper hint applied" 1 (List.length spec.compiled.Core.Compile.interproc_applied);
  check_bool "fewer issues through the wrapper" true
    (spec.Core.Runner.metrics.Simt.Metrics.issues
    < baseline.Core.Runner.metrics.Simt.Metrics.issues);
  let dump (o : Core.Runner.outcome) = Simt.Memsys.dump o.Core.Runner.memory ~base:0 ~len:64 in
  check_bool "results identical" true (dump baseline = dump spec)

(* ---- hints inside device functions ---- *)

let test_hint_in_device_function () =
  (* The synchronization machinery is not kernel-specific: a label hint
     inside a device function compiles and behaves. *)
  let src =
    {|
global out: float[4096];
func walk(seed: float) -> float {
  var acc: float = seed;
  predict L1;
  var i: int = 0;
  while (i < 24) {
    if (randint(4) == 0) {
      L1:
      var j: int = 0;
      while (j < 12) { acc = acc + sin(acc) * 0.25; j = j + 1; }
    }
    i = i + 1;
  }
  return acc;
}
kernel k() { out[tid()] = walk(float(lane()) * 0.1); }
|}
  in
  let config = { Simt.Config.default with Simt.Config.n_warps = 1 } in
  let baseline = Core.Runner.run_source ~config Core.Compile.baseline ~source:src ~args:[] in
  let spec = Core.Runner.run_source ~config Core.Compile.speculative ~source:src ~args:[] in
  check_int "hint applied inside device function" 1
    (List.length spec.compiled.Core.Compile.applied);
  check Alcotest.string "applied in walk" "walk"
    (List.hd spec.compiled.Core.Compile.applied).Passes.Specrecon.in_func;
  let dump (o : Core.Runner.outcome) = Simt.Memsys.dump o.Core.Runner.memory ~base:0 ~len:64 in
  check_bool "results identical" true (dump baseline = dump spec);
  check_bool "efficiency improves" true
    (Core.Runner.efficiency spec > Core.Runner.efficiency baseline)

(* ---- region statistics ---- *)

let test_region_stats_shift () =
  (* §5.2: the efficiency gain lands in the common-code region; the rest
     of the program pays for it. *)
  let spec_workload = Workloads.Registry.find "pathtracer" in
  let baseline = Core.Region_stats.measure Core.Compile.baseline spec_workload in
  let merged = Core.Region_stats.measure Core.Compile.speculative spec_workload in
  (* baseline compilation carries no hints: everything counts as other *)
  check_int "baseline has no region issues" 0 baseline.Core.Region_stats.region_issues;
  check_bool "region work exists under specrecon" true
    (merged.Core.Region_stats.region_issues > 0);
  check_bool "region runs above the old overall efficiency" true
    (Core.Region_stats.region_efficiency merged
    > Core.Region_stats.other_efficiency baseline)

(* ---- multiple concurrent predictions (§6) ---- *)

let test_multiple_predictions () =
  (* Two independent loops, each with its own hint: both compile, both
     deconflict, the kernel runs, and results match baseline. *)
  let src =
    {|
global out: float[4096];
kernel k(n: int) {
  var acc: float = 0.0;
  predict L1;
  for i in 0 .. n {
    if (randint(4) == 0) {
      L1:
      var j: int = 0;
      while (j < 10) { acc = acc + sin(acc) * 0.25; j = j + 1; }
    }
  }
  predict L2;
  for i2 in 0 .. n {
    if (randint(4) == 0) {
      L2:
      var j2: int = 0;
      while (j2 < 10) { acc = acc + cos(acc) * 0.25; j2 = j2 + 1; }
    }
  }
  out[tid()] = acc;
}
|}
  in
  let config = { Simt.Config.default with Simt.Config.n_warps = 1 } in
  let baseline = Core.Runner.run_source ~config Core.Compile.baseline ~source:src ~args:[ T.I 16 ] in
  let spec = Core.Runner.run_source ~config Core.Compile.speculative ~source:src ~args:[ T.I 16 ] in
  check_int "two hints applied" 2 (List.length spec.compiled.Core.Compile.applied);
  (match spec.compiled.Core.Compile.deconflict_report with
  | Some r -> check_int "no unresolved conflicts" 0 (List.length r.Passes.Deconflict.unresolved)
  | None -> Alcotest.fail "expected a deconfliction report");
  let dump (o : Core.Runner.outcome) = Simt.Memsys.dump o.Core.Runner.memory ~base:0 ~len:64 in
  check_bool "results identical" true (dump baseline = dump spec);
  check_bool "efficiency improves" true
    (Core.Runner.efficiency spec > Core.Runner.efficiency baseline)

let tests =
  [
    ( "passes.pdom",
      [
        Alcotest.test_case "inserts at ipdom" `Quick test_pdom_inserts_at_ipdom;
        Alcotest.test_case "skips uniform branches" `Quick test_pdom_skips_uniform;
      ] );
    ( "passes.specrecon",
      [
        Alcotest.test_case "figure 4(d) shape" `Quick test_specrecon_figure4_shape;
        Alcotest.test_case "threshold wait" `Quick test_specrecon_threshold;
        Alcotest.test_case "unknown label" `Quick test_specrecon_unknown_label;
      ] );
    ( "passes.deconflict",
      [
        Alcotest.test_case "dynamic" `Quick test_deconflict_dynamic;
        Alcotest.test_case "static" `Quick test_deconflict_static;
        Alcotest.test_case "same priority unresolved" `Quick
          test_deconflict_same_priority_unresolved;
        Alcotest.test_case "conflict deadlocks without it" `Quick
          test_conflict_deadlocks_without_deconfliction;
        Alcotest.test_case "yield recovers" `Quick test_yield_recovers_from_conflict;
      ] );
    ( "passes.interproc",
      [
        Alcotest.test_case "shape" `Quick test_interproc_shape;
        Alcotest.test_case "behaviour" `Quick test_interproc_behaviour;
        Alcotest.test_case "errors" `Quick test_interproc_errors;
      ] );
    ( "passes.auto_detect",
      [
        Alcotest.test_case "iteration delay" `Quick test_auto_detect_iteration_delay;
        Alcotest.test_case "loop merge" `Quick test_auto_detect_loop_merge;
        Alcotest.test_case "uniform trip skipped" `Quick test_auto_detect_skips_uniform_trip;
        Alcotest.test_case "annotated skipped" `Quick test_auto_detect_skips_annotated;
        Alcotest.test_case "install without overlap" `Quick test_auto_install_no_overlap;
      ] );
    ( "passes.multiple-predictions",
      [ Alcotest.test_case "two independent hints" `Quick test_multiple_predictions ] );
    ( "passes.extensions",
      [
        Alcotest.test_case "wrapper-function idiom" `Quick test_interproc_wrapper_idiom;
        Alcotest.test_case "hint in device function" `Quick test_hint_in_device_function;
        Alcotest.test_case "region stats shift" `Slow test_region_stats_shift;
      ] );
  ]
